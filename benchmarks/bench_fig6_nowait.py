"""Figure 6: throughput when the restore phase immediately follows the
checkpoint phase (uniform = Fig. 6a, variable = Fig. 6b).

The adjoint scenario: overall runtime matters and checkpoints need not be
persisted — consumed checkpoints are discarded and their flushes abandoned.
Restore rates drop versus Fig. 5 (eviction interleaving), and ADIOS2 stays
the slowest approach.
"""

import pytest

from benchmarks.conftest import FULL, SNAPSHOTS, attach_rows, run_once
from repro.harness.approaches import TABLE1
from repro.harness.figures import ORDERS, fig6_nowait
from repro.workloads.patterns import RestoreOrder

_ORDERS = ORDERS if FULL else (RestoreOrder.SEQUENTIAL,)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("workload", ["uniform", "variable"])
def test_fig6_nowait(benchmark, workload):
    result = run_once(
        benchmark,
        fig6_nowait,
        workload=workload,
        num_snapshots=SNAPSHOTS,
        approaches=TABLE1,
        orders=_ORDERS,
    )
    attach_rows(benchmark, result)
    results = result.extras["results"]
    adios = [r.restore_rate for r in results if "ADIOS2" in r.experiment.approach.label]
    score = [r.restore_rate for r in results if "Score" in r.experiment.approach.label]
    uvm = [r.restore_rate for r in results if "UVM" in r.experiment.approach.label]
    assert max(adios) < min(score)
    # Paper (Section 5.4.3): Score outperforms optimized UVM on restores.
    assert max(score) > max(uvm) * 0.8
    ckpt_adios = [r.checkpoint_rate for r in results if "ADIOS2" in r.experiment.approach.label]
    ckpt_rest = [r.checkpoint_rate for r in results if "ADIOS2" not in r.experiment.approach.label]
    # ADIOS2 checkpoints are the slowest too (no device cache + marshaling).
    assert max(ckpt_adios) < min(ckpt_rest)
