"""Figure 7: restore rate and completed next prefetches per iteration
(Score runtime, uniform sizes, sequential order, 3 hint counts).

Shape checks: restore throughput improves monotonically with the amount of
foreknowledge, and with all hints the prefetch distance is non-trivial
(successor checkpoints staged on the GPU cache ahead of their restores).
"""

import pytest

from benchmarks.conftest import SNAPSHOTS, attach_rows, run_once
from repro.harness.figures import fig7_prefetch_distance


@pytest.mark.benchmark(group="fig7")
def test_fig7_prefetch_distance(benchmark):
    result = run_once(benchmark, fig7_prefetch_distance, num_snapshots=SNAPSHOTS)
    attach_rows(benchmark, result)
    by_label = {row[0]: row for row in result.rows}
    assert set(by_label) == {"No hints", "Single hint", "All hints"}
    # With all hints the prefetcher stages ahead: mean distance > none case.
    none_dist = by_label["No hints"][2]
    all_dist = by_label["All hints"][2]
    assert all_dist >= none_dist
    assert all_dist > 0
    # Per-iteration series are present for plotting.
    series = result.extras["All hints"]
    assert len(series["restore_rate"]) == SNAPSHOTS
    assert len(series["prefetch_distance"]) == SNAPSHOTS
