"""Figure 4: size distribution of RTM snapshots across 32 ranks.

Regenerates the min/max/avg envelope of the synthetic RTM traces and checks
the paper's headline properties: per-shot totals in the 38–50 GB band and
the small-early / plateau-late ramp.
"""

import pytest

from benchmarks.conftest import attach_rows, run_once
from repro.harness.figures import fig4_size_distribution


@pytest.mark.benchmark(group="fig4")
def test_fig4_size_distribution(benchmark):
    result = run_once(benchmark, fig4_size_distribution, num_ranks=32, num_snapshots=384)
    attach_rows(benchmark, result)
    totals = result.extras["per_rank_totals_gib"]
    # Paper: aggregated size per shot ranges 38–50 GB (some generator slack).
    assert all(25.0 < t < 85.0 for t in totals)
    assert sum(totals) / len(totals) == pytest.approx(48.0, rel=0.25)
    # Ramp: first snapshots far below the plateau.
    rows = result.rows
    early_avg = sum(r[3] for r in rows[:16]) / 16
    late_avg = sum(r[3] for r in rows[-64:]) / 64
    assert early_avg < 0.5 * late_avg
