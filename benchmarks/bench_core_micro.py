"""Micro-benchmarks of the runtime's hot data structures.

These use pytest-benchmark conventionally (many rounds): the O(n) sliding
window selection, allocation-table churn, and restore-queue distance
queries — the operations on the metadata critical path whose cost the paper
explicitly bounds ("a long response time may delay the data transfer").
"""

import pytest

from repro.core.alloctable import AllocTable
from repro.core.catalog import CheckpointRecord
from repro.core.restore_queue import RestoreQueue
from repro.core.scoring import FragmentCost, ScorePolicy


def _rec(ckpt_id, size=10):
    return CheckpointRecord(ckpt_id, size, size, 0)


def _full_table(n):
    t = AllocTable(10 * n)
    for i in range(n):
        t.insert(_rec(i), 10, i * 10)
    return t


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("n", [64, 512])
def test_scoring_selection(benchmark, n):
    table = _full_table(n)
    policy = ScorePolicy()

    def cost_of(frag):
        return FragmentCost(p=float(frag.offset % 7), s=float(frag.offset % 11), barrier=False)

    window = benchmark(lambda: policy.select(table.fragments(), 25, cost_of))
    assert window is not None


@pytest.mark.benchmark(group="micro")
def test_alloctable_insert_remove_churn(benchmark):
    def churn():
        t = AllocTable(1000)
        for i in range(50):
            t.insert(_rec(i), 10, t.find_gap(10))
        for i in range(0, 50, 2):
            t.remove(i)
        for i in range(50, 70):
            offset = t.find_gap(10)
            t.insert(_rec(i), 10, offset)
        return t

    table = benchmark(churn)
    table.check_invariants()


@pytest.mark.benchmark(group="micro")
def test_restore_queue_distance(benchmark):
    q = RestoreQueue()
    for v in range(2000):
        q.enqueue(v)
    for v in range(0, 1000, 2):
        q.consume(v)

    def probe():
        total = 0
        for v in range(1000, 2000, 50):
            total += q.distance(v)
        return total

    assert benchmark(probe) > 0
