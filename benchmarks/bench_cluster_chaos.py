#!/usr/bin/env python
"""Cluster-chaos benchmark: durability and restore latency through a crash.

A 4-node cluster (``replica_factor=2``, peer reads, failover, repair)
serves concurrent clients through the :class:`CheckpointService`. Two
measured scenarios:

* ``baseline`` — submit, settle, restore cross-node. No chaos; this is
  the no-crash demand-restore latency reference.
* ``chaos`` — same workload, but after the flush cascades settle one
  node is fail-stop crashed (its engines die, its SSD contents are
  lost, the replica directory withdraws every copy it held). The
  anti-entropy repairer then re-replicates from the surviving holders,
  and every client restores its checkpoints through the service —
  sessions pinned to the dead node fail over to survivors.

Reported per scenario: demand-restore p50/p99, recovered/durable
counts, repair copies, and the post-repair minimum holder count.

Three self-contained gates:

* 100% durable recovery: every checkpoint that reached a durable tier
  before the crash restores bit-identically afterwards.
* Factor restored: after repair, no directory entry has fewer than
  ``replica_factor`` live holders.
* ``--max-p99-ratio`` (default 2.0): the post-crash demand-restore p99
  must stay within this multiple of the no-crash baseline p99.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_chaos.py \
        --json BENCH_pr10.json [--quick] [--label after] \
        [--baseline BENCH_pr10.json --max-regression 25]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cluster.topology import ClusterTopology
from repro.config import CacheConfig, ClusterConfig, RuntimeConfig, ScaleModel
from repro.util.rng import make_rng
from repro.util.units import GiB, KiB, MiB

#: One nominal second lasts 100 ms (same discipline as bench_cluster.py).
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.1, alignment=512 * KiB)

SNAPSHOT_SIZE = 128 * MiB
NODES = 4
ENGINES_PER_NODE = 1
REPLICA_FACTOR = 2
CRASH_NODE = 1


def build_config() -> RuntimeConfig:
    return RuntimeConfig(
        scale=BENCH_SCALE,
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
        charge_allocation_cost=False,
        num_nodes=NODES,
        processes_per_node=ENGINES_PER_NODE,
        cluster=ClusterConfig(
            enabled=True,
            replica_factor=REPLICA_FACTOR,
            repair=True,
            failover=True,
        ),
    )


def percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_scenario(crash: bool, checkpoints: int) -> dict:
    """Submit, settle, (optionally crash + repair), restore everything."""
    config = build_config()
    started = time.perf_counter()
    with ClusterTopology(config, engine_kwargs={"flush_to_pfs": True}) as topo:
        service = topo.service
        engines = topo.engines
        clients = NODES * ENGINES_PER_NODE
        sessions = [service.connect(f"client-{i}") for i in range(clients)]

        checksums = {}
        for j in range(checkpoints):
            for i, session in enumerate(sessions):
                ckpt_id = i * checkpoints + j
                buf = session.engine.device.alloc_buffer(SNAPSHOT_SIZE)
                buf.fill_random(make_rng(29 + ckpt_id, "chaos-bench"))
                checksums[ckpt_id] = buf.checksum()
                session.submit(ckpt_id, buf)
        for engine in engines:
            engine.wait_for_flushes(timeout=600.0)

        fabric = topo.fabric
        durable = {
            ckpt_id
            for ckpt_id in checksums
            if service._home_of(ckpt_id) is not None
            and (
                fabric.directory.holders((service._home_of(ckpt_id), ckpt_id))
                or topo.cluster.pfs.contains((service._home_of(ckpt_id), ckpt_id))
            )
        }

        repair_copies = 0
        if crash:
            fabric.membership.crash(CRASH_NODE, "fail-stop")
            repair_copies = fabric.repairer.run()

        # Every client restores its checkpoints cross-node: the target
        # sits two ring positions away, skipping the successor replica,
        # so every restore is a demand promotion over the fabric. When
        # the crash killed the session's home or its target, the restore
        # goes through the service's failover path instead (re-pin to a
        # survivor, then promote).
        latencies = []
        recovered = 0
        mismatched = []
        for i, session in enumerate(sessions):
            target = engines[(i + 2 * ENGINES_PER_NODE) % len(engines)]
            for j in range(checkpoints):
                ckpt_id = i * checkpoints + j
                if ckpt_id not in durable:
                    continue
                alloc_on = session.engine if target.crashed.is_set() else target
                if alloc_on.crashed.is_set():
                    alloc_on = next(e for e in engines if not e.crashed.is_set())
                out = alloc_on.device.alloc_buffer(SNAPSHOT_SIZE)
                if target.crashed.is_set() or session.engine.crashed.is_set():
                    latencies.append(session.restore(ckpt_id, out))
                else:
                    latencies.append(session.restore(ckpt_id, out, engine=target))
                if out.checksum() == checksums[ckpt_id]:
                    recovered += 1
                else:
                    mismatched.append(ckpt_id)

        min_holders = min(
            (len(holders) for _, holders in fabric.directory.snapshot()),
            default=0,
        )
        snapshot = topo.telemetry.registry.snapshot()
        stats = service.stats()

    return {
        "crash": crash,
        "wall_s": round(time.perf_counter() - started, 3),
        "durable": len(durable),
        "recovered": recovered,
        "mismatched": mismatched,
        "restores": len(latencies),
        "p50_s": round(percentile(latencies, 0.50), 6),
        "p99_s": round(percentile(latencies, 0.99), 6),
        "mean_s": round(sum(latencies) / len(latencies), 6),
        "repair_copies": repair_copies,
        "min_holders_after": min_holders,
        "failovers": stats["failovers"],
        "degraded_reads": int(snapshot.get("cluster.membership.degraded_reads", 0)),
        "repair_bytes": int(snapshot.get("cluster.repair.bytes", 0)),
    }


def run(quick: bool, repeats: int, label: str) -> dict:
    checkpoints = 2 if quick else 3
    modes = {}
    for key, crash in (("baseline", False), ("chaos", True)):
        runs = []
        for i in range(repeats):
            result = run_scenario(crash, checkpoints)
            runs.append(result)
            print(
                f"  {key} run {i + 1}/{repeats}: {result['recovered']}/"
                f"{result['durable']} recovered, restore p99 "
                f"{result['p99_s']:.4f}s nominal, {result['repair_copies']} "
                f"repair copies ({result['wall_s']:.2f}s wall)",
                file=sys.stderr,
            )
        # Best-of-N on p99: wall-clock noise only ever inflates latency.
        modes[key] = min(runs, key=lambda r: r["p99_s"])
    baseline_p99 = modes["baseline"]["p99_s"]
    chaos_p99 = modes["chaos"]["p99_s"]
    return {
        "label": label,
        "quick": quick,
        "nodes": NODES,
        "engines_per_node": ENGINES_PER_NODE,
        "replica_factor": REPLICA_FACTOR,
        "crash_node": CRASH_NODE,
        "snapshot_size_mib": SNAPSHOT_SIZE // MiB,
        "checkpoints_per_client": checkpoints,
        "repeats": repeats,
        "baseline": modes["baseline"],
        "chaos": modes["chaos"],
        "p99_ratio": round(chaos_p99 / baseline_p99, 3) if baseline_p99 else 0.0,
    }


def baseline_entry(baseline: dict, quick: bool):
    """The baseline measurement matching this run's ``--quick`` mode."""
    candidates = []
    if isinstance(baseline.get("chaos"), dict):
        candidates.append(baseline)
    for value in baseline.values():
        if isinstance(value, dict) and isinstance(value.get("chaos"), dict):
            candidates.append(value)
    matching = [c for c in candidates if c.get("quick", False) == quick]
    return matching[0] if matching else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument("--repeats", type=int, default=2, help="runs per scenario (best-of)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=2.0,
        help="fail when the post-crash restore p99 exceeds this multiple "
        "of the no-crash baseline p99",
    )
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        help="fail when the chaos restore p99 exceeds baseline by this percent",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    failed = False
    chaos = result["chaos"]
    if chaos["recovered"] < chaos["durable"] or chaos["mismatched"]:
        print(
            f"GATE FAILED: {chaos['recovered']}/{chaos['durable']} durable "
            f"checkpoints recovered after the crash "
            f"(mismatched: {chaos['mismatched']})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: {chaos['recovered']}/{chaos['durable']} durable checkpoints "
            f"recovered bit-identically after a 1-node fail-stop crash",
            file=sys.stderr,
        )
    if chaos["min_holders_after"] < REPLICA_FACTOR:
        print(
            f"GATE FAILED: repair left a checkpoint with "
            f"{chaos['min_holders_after']} holders (< factor {REPLICA_FACTOR})",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: anti-entropy repair restored replica_factor={REPLICA_FACTOR} "
            f"({chaos['repair_copies']} copies)",
            file=sys.stderr,
        )
    ratio = result["p99_ratio"]
    if ratio > args.max_p99_ratio:
        print(
            f"GATE FAILED: post-crash restore p99 is {ratio:.2f}x the "
            f"no-crash baseline (> {args.max_p99_ratio:.1f}x)",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: post-crash restore p99 {chaos['p99_s']:.4f}s is {ratio:.2f}x "
            f"the no-crash baseline {result['baseline']['p99_s']:.4f}s "
            f"(<= {args.max_p99_ratio:.1f}x)",
            file=sys.stderr,
        )

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} in {args.baseline}; "
                "skipping regression gate",
                file=sys.stderr,
            )
        else:
            base_p99 = entry["chaos"]["p99_s"]
            ceiling = base_p99 * (1.0 + args.max_regression / 100.0)
            current = result["chaos"]["p99_s"]
            verdict = "OK" if current <= ceiling else "REGRESSION"
            print(
                f"{verdict}: chaos restore p99 {current:.4f}s vs baseline "
                f"{base_p99:.4f}s (ceiling {ceiling:.4f}s)",
                file=sys.stderr,
            )
            if verdict != "OK":
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
