#!/usr/bin/env python
"""Link-contention benchmark: demand-restore latency with and without QoS.

Two engines share one PCIe link pair and one node SSD, with ``flush_to_pfs``
enabled so the cascade's SSD read-back legs occupy the same SSD read link
that demand restores need.  Each engine checkpoints a history larger than
its caches (so old versions live only on SSD/PFS), hints a reverse-order
restore schedule, and then *deviates* from it every few restores by
demanding the farthest unconsumed version — a checkpoint the prefetcher has
not staged, served by a demand read that must fight the flush read-backs
and speculative prefetches for the link.

The figure of merit is the blocked-time distribution of those deviating
demand restores (p50/p99, nominal seconds), measured twice over the same
workload: once with the plain FIFO links (``SchedConfig.enabled=False``, the
pre-scheduler behaviour) and once with the QoS scheduler arbitrating every
shared link.  Priority scheduling plus speculative preemption should cut
the demand tail; the JSON result records both modes and the improvement.

Usage::

    PYTHONPATH=src python benchmarks/bench_contention.py \
        --json out.json [--quick] [--label after] \
        [--baseline BENCH_pr3.json --max-regression 20]

With ``--baseline`` the run fails (exit 1) when the scheduled-mode demand
p99 is more than ``--max-regression`` percent *worse* than the matching
entry (same ``--quick`` mode) of the baseline file — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from collections import deque

from repro.analysis.report import analyze_events
from repro.config import (
    AnalysisConfig,
    CacheConfig,
    RuntimeConfig,
    ScaleModel,
    SchedConfig,
    StreamConfig,
)
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import GiB, KiB, MiB

#: One nominal second lasts 50 ms.  The figure of merit is a *nominal* tail
#: latency, and real condition-variable wake-up jitter (~0.1-1 ms wall)
#: pollutes it at wall/time_scale nominal seconds — at 0.05 that noise
#: floor sits well below the demand-read latencies being compared, while a
#: full two-mode comparison still finishes in seconds.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.05, alignment=512 * KiB)

SNAPSHOT_SIZE = 128 * MiB
COMPUTE_INTERVAL = 0.05  # nominal seconds between checkpoints
#: nominal seconds of compute between restores.  Two engines pulling
#: 128 MiB every 0.05 s offer ~5.1 GiB/s to the 5.5 GiB/s SSD read link:
#: the prefetcher stays just-in-time, the link runs near saturation, and a
#: deviating demand read has to punch through in-flight prefetch traffic —
#: the contention the QoS classes exist for.  (Un-paced restores would
#: instead saturate the link with *demand-class* promotions, and no
#: scheduler can prioritize demand over demand.)
RESTORE_INTERVAL = 0.05
DEVIATE_EVERY = 4  # every 4th restore demands the farthest version


def build_config(sched_enabled: bool, stream: bool = False) -> RuntimeConfig:
    config = RuntimeConfig(
        scale=BENCH_SCALE,
        # 4 GPU slots / 8 host slots per engine: most of the history is
        # evicted to SSD (and, via the cascade, to the PFS) before restores
        # begin, so deviating restores are genuine cold demand reads.
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=1 * GiB),
        processes_per_node=2,  # one shared PCIe pair, one shared SSD
        charge_allocation_cost=False,
        # 16 MiB quanta: a demand read arriving mid-prefetch waits at most
        # ~3 ms on the SSD link before the arbiter hands it the slot.
        sched=SchedConfig(enabled=sched_enabled, quantum_bytes=16 * MiB),
    )
    if stream:
        # 128 MiB snapshots stream as 8-chunk pipelines at the default
        # chunk size; chunks flow through the same WFQ arbiters, so this
        # mode exercises chunk-boundary preemption under contention.
        config = config.with_(stream=StreamConfig(enabled=True))
    return config


def make_buffer(context, seed: int):
    buf = context.device.alloc_buffer(SNAPSHOT_SIZE)
    buf.fill_random(make_rng(seed, "bench-contention"))
    return buf


def worker(engine, context, snapshots: int, demand_ids: set, errors: list) -> None:
    try:
        for i in range(snapshots):
            engine.checkpoint(i, make_buffer(context, seed=i))
            engine.clock.sleep(COMPUTE_INTERVAL)
        # Quiesce the cascade before the restore phase (the reason
        # Prefetch_start exists, Section 4.1.1): restores must not depend on
        # flush progress, or a demand promotion that forces an eviction would
        # *wait on* the very cascade traffic the scheduler deprioritizes.
        # The measured contention is demand reads vs the prefetch stream on
        # the shared SSD read link and PCIe H2D link.
        engine.wait_for_flushes(timeout=600.0)
        hints = list(reversed(range(snapshots)))
        for ckpt_id in hints:
            engine.prefetch_enqueue(ckpt_id)
        engine.prefetch_start()
        out = make_buffer(context, seed=10_000 + engine.process_id)
        remaining = deque(hints)
        # Stagger the ranks half an interval apart so their deviating
        # demand reads don't all land on the link in the same instant.
        engine.clock.sleep(engine.process_id * RESTORE_INTERVAL / 2)
        step = 0
        while remaining:
            if step % DEVIATE_EVERY == DEVIATE_EVERY - 1 and len(remaining) > 1:
                ckpt_id = remaining.pop()  # farthest hint: unprefetched
                demand_ids.add(ckpt_id)
            else:
                ckpt_id = remaining.popleft()  # hint-order restore
            engine.restore(ckpt_id, out)
            engine.clock.sleep(RESTORE_INTERVAL)
            step += 1
    except Exception as exc:  # noqa: BLE001 - surfaced by the driver
        errors.append(exc)


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values) -> dict:
    return {
        "count": len(values),
        "mean_s": round(sum(values) / len(values), 6),
        "p50_s": round(percentile(values, 50), 6),
        "p99_s": round(percentile(values, 99), 6),
        "max_s": round(max(values), 6),
    }


def run_mode(
    sched_enabled: bool, snapshots: int, analysis: bool = False, stream: bool = False
) -> dict:
    config = build_config(sched_enabled, stream=stream)
    if analysis:
        # Separate attribution pass: tracing + causal ids add real-time
        # bookkeeping that would pollute the measured p99s, so the timed
        # modes above run with both off and this pass's latencies are
        # never compared against the baseline gate.
        config = config.with_(telemetry=True, analysis=AnalysisConfig(enabled=True))
    with Cluster(config) as cluster:
        contexts = cluster.process_contexts()
        engines = [ScoreEngine(ctx, flush_to_pfs=True) for ctx in contexts]
        demand_ids = [set() for _ in engines]
        errors: list = []
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=worker, args=(eng, ctx, snapshots, ids, errors)
            )
            for eng, ctx, ids in zip(engines, contexts, demand_ids)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
            for engine in engines:
                engine.wait_for_flushes(timeout=600.0)
            demand, hinted = [], []
            for engine, ids in zip(engines, demand_ids):
                for event in engine.recorder.restores():
                    (demand if event.ckpt_id in ids else hinted).append(event.blocked)
            sched_stats = {}
            if sched_enabled:
                snaps = cluster.sched.snapshot()
                sched_stats = {
                    "grants": sum(s["grants"] for s in snaps),
                    "preemptions": sum(s["preemptions"] for s in snaps),
                    "sheds": sum(s["sheds"] for s in snaps),
                    "admission_blocks": sum(s["admission_blocks"] for s in snaps),
                }
            attribution = {}
            if analysis:
                report = analyze_events(cluster.telemetry.bus.snapshot())
                attribution = {
                    "attribution": {
                        "accounting": report["accounting"],
                        "categories": report["categories"],
                        "tiers": report["tiers"],
                    }
                }
            return {
                "sched": sched_enabled,
                "wall_s": round(time.perf_counter() - started, 3),
                "demand_restores": summarize(demand),
                "hinted_restores": summarize(hinted),
                **sched_stats,
                **attribution,
            }
        finally:
            for engine in engines:
                engine.close()


def run(quick: bool, repeats: int, label: str, stream: bool = False) -> dict:
    snapshots = 32 if quick else 96
    modes = {}
    for key, enabled in (("fifo", False), ("sched", True)):
        runs = []
        for i in range(repeats):
            result = run_mode(enabled, snapshots, stream=stream)
            runs.append(result)
            print(
                f"  {key} run {i + 1}/{repeats}: demand p99 "
                f"{result['demand_restores']['p99_s']:.4f}s nominal "
                f"({result['wall_s']:.2f}s wall)",
                file=sys.stderr,
            )
        # Best-of-N: thread-scheduling noise only ever inflates latency.
        modes[key] = min(runs, key=lambda r: r["demand_restores"]["p99_s"])
    print("  attribution pass (sched + causal tracing)", file=sys.stderr)
    attribution = run_mode(True, snapshots, analysis=True, stream=stream).get(
        "attribution", {}
    )
    fifo_p99 = modes["fifo"]["demand_restores"]["p99_s"]
    sched_p99 = modes["sched"]["demand_restores"]["p99_s"]
    return {
        "label": label,
        "quick": quick,
        "stream": stream,
        "engines": 2,
        "snapshots": snapshots,
        "deviate_every": DEVIATE_EVERY,
        "repeats": repeats,
        "fifo": modes["fifo"],
        "sched": modes["sched"],
        "attribution": attribution,
        "demand_p99_improvement_pct": round(
            100.0 * (fifo_p99 - sched_p99) / fifo_p99, 1
        )
        if fifo_p99 > 0
        else 0.0,
    }


def baseline_entry(baseline: dict, quick: bool, stream: bool = False):
    """The baseline measurement matching this run's ``--quick``/``--stream``."""
    candidates = []
    if "sched" in baseline and isinstance(baseline.get("sched"), dict):
        candidates.append(baseline)
    for value in baseline.values():
        if isinstance(value, dict) and isinstance(value.get("sched"), dict):
            candidates.append(value)
    matching = [
        c
        for c in candidates
        if c.get("quick", False) == quick and c.get("stream", False) == stream
    ]
    return matching[0] if matching else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument(
        "--stream",
        action="store_true",
        help="enable pipelined chunk streaming through the flush cascade",
    )
    parser.add_argument("--repeats", type=int, default=2, help="runs per mode (best-of)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=20.0,
        help="fail when the scheduled demand p99 exceeds baseline by this percent",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label, stream=args.stream)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick, args.stream)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} stream={args.stream} "
                f"in {args.baseline}; skipping regression gate",
                file=sys.stderr,
            )
            return 0
        baseline_p99 = entry["sched"]["demand_restores"]["p99_s"]
        ceiling = baseline_p99 * (1.0 + args.max_regression / 100.0)
        current = result["sched"]["demand_restores"]["p99_s"]
        verdict = "OK" if current <= ceiling else "REGRESSION"
        print(
            f"{verdict}: scheduled demand p99 {current:.4f}s vs baseline "
            f"{baseline_p99:.4f}s (ceiling {ceiling:.4f}s)",
            file=sys.stderr,
        )
        if verdict != "OK":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
