#!/usr/bin/env python
"""Access-pattern prediction benchmark: learned prefetch vs hints vs none.

One deterministic LLM-serving KV-cache trace (Zipf-popular sessions
suspending and re-activating; the flush cascade turns the caches over
fast enough that a suspended session's block never survives to its
re-activation) is driven four ways; the figure of merit is the
demand-restore p99 in nominal seconds:

* ``none``          — no hints, no prediction: demand-only promotion.
* ``learned``       — no hints; the online predictor discovers per-session
  periods and stages re-activations speculatively.
* ``hints``         — the oracle restore order as explicit hints (upper
  bound; no real serving system has it).
* ``hints_predict`` — oracle hints *and* prediction enabled: explicit
  hints must keep outranking the overlay, so this must match ``hints``
  within noise.

A fifth run replays an *adversarial* trace (3x the sessions, memoryless
uniform re-activation — unlearnable by construction) under the learned
config and checks the validation layer suspends speculation instead of
thrashing.

Self-contained gates:

* ``--max-learned-ratio`` (default 0.7): learned p99 must be at most this
  fraction of the ``none`` p99 (the >= 30 percent cut of the issue).
* ``--hint-tolerance`` (default 30): ``hints_predict`` p99 may exceed
  ``hints`` p99 by at most this many percent — or by at most
  ``--hint-abs-tolerance`` nominal seconds (default 0.02, below one cold
  SSD demand read), because a percentage of a sub-millisecond hinted p99
  amplifies one tail cold miss into triple digits.
* ``--require-suspension``: the adversarial run must record at least one
  validation suspension.

Usage::

    PYTHONPATH=src python benchmarks/bench_prediction.py \
        --json BENCH_pr9.json [--quick] [--label after] \
        [--baseline BENCH_pr9.json --max-regression 25]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import CacheConfig, PredictConfig, RuntimeConfig, ScaleModel
from repro.harness.prediction import percentile, run_predicted
from repro.util.units import KiB, MiB
from repro.workloads.kvcache import KvCacheSpec

#: One nominal second lasts 100 ms: restore transfers (tens of nominal
#: milliseconds) dwarf thread-handoff jitter on the wall-scaled clock.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.1, alignment=512 * KiB)

KV_BYTES = 128 * MiB
SESSIONS = 8
#: the adversarial run doubles-plus the session count so the working set
#: (24 blocks) far exceeds the caches — speculation *must* thrash there,
#: and the validation layer is expected to suspend it.
ADVERSARIAL_SESSIONS = 24
#: 4 GPU slots + 8 host slots.  Capacity alone does not keep a session
#: resident: the flush cascade turns the caches over at the aggregate
#: checkpoint rate, so a suspended session's block is evicted long before
#: its re-activation — without hints or prediction every re-activation is
#: an SSD demand read.
GPU_SLOTS = 4
HOST_SLOTS = 8


def build_config(predict_on: bool) -> RuntimeConfig:
    cfg = RuntimeConfig(
        scale=BENCH_SCALE,
        cache=CacheConfig(
            gpu_cache_size=GPU_SLOTS * KV_BYTES,
            host_cache_size=HOST_SLOTS * KV_BYTES,
        ),
        charge_allocation_cost=False,
        processes_per_node=1,
        telemetry=True,
    )
    if predict_on:
        cfg = cfg.with_(predict=PredictConfig(enabled=True))
    return cfg


def build_spec(events: int, adversarial: bool, seed: int = 11) -> KvCacheSpec:
    return KvCacheSpec(
        sessions=ADVERSARIAL_SESSIONS if adversarial else SESSIONS,
        events=events,
        kv_bytes=KV_BYTES,
        base_period_s=0.4,
        think_s=0.004,
        adversarial=adversarial,
        seed=seed,
    )


def run_mode(
    key: str, mode: str, predict_on: bool, events: int, adversarial: bool
) -> dict:
    cfg = build_config(predict_on)
    spec = build_spec(events, adversarial)
    started = time.perf_counter()
    result, telemetry = run_predicted(cfg, spec, mode)
    if result.verified != len(result.restore_latencies):
        raise RuntimeError(
            f"{key}: {result.verified}/{len(result.restore_latencies)} "
            "restores checksum-verified"
        )
    snapshot = telemetry.registry.snapshot()
    latencies = result.restore_latencies
    return {
        "mode": mode,
        "prediction_enabled": predict_on,
        "adversarial": adversarial,
        "restores": len(latencies),
        "wall_s": round(time.perf_counter() - started, 3),
        "p50_s": round(percentile(latencies, 0.50), 6),
        "p99_s": round(percentile(latencies, 0.99), 6),
        "mean_s": round(sum(latencies) / len(latencies), 6),
        "ssd_read_ops": int(snapshot.get("tier.ssd.read_ops", 0)),
        "spec_promotions": int(snapshot.get("predict.spec_prefetches", 0)),
        "spec_hits": int(snapshot.get("predict.spec_hits", 0)),
        "spec_wastes": int(snapshot.get("predict.spec_wastes", 0)),
        "spec_wasted_bytes": int(snapshot.get("predict.spec_wasted_bytes", 0)),
        "suspensions": int(snapshot.get("predict.suspensions", 0)),
    }


#: (key, queue mode, prediction enabled, adversarial trace)
MODES = (
    ("none", "none", False, False),
    ("learned", "learned", True, False),
    ("hints", "hints", False, False),
    ("hints_predict", "hints", True, False),
    ("adversarial", "learned", True, True),
)


def run(quick: bool, repeats: int, label: str) -> dict:
    events = 20 * SESSIONS if quick else 40 * SESSIONS
    modes = {}
    for key, mode, predict_on, adversarial in MODES:
        runs = []
        for i in range(repeats):
            result = run_mode(key, mode, predict_on, events, adversarial)
            runs.append(result)
            print(
                f"  {key} run {i + 1}/{repeats}: restore p99 "
                f"{result['p99_s']:.4f}s nominal, hit/waste "
                f"{result['spec_hits']}/{result['spec_wastes']}, "
                f"{result['suspensions']} suspensions "
                f"({result['wall_s']:.2f}s wall)",
                file=sys.stderr,
            )
        # Best-of-N: wall-clock scheduling noise leaks into the wall-scaled
        # virtual clock and only ever inflates latency.  Suspensions are
        # kept as max-of-N — the adversarial gate asks "does the validator
        # trip", and noise only ever delays the trip.
        best = min(runs, key=lambda r: r["p99_s"])
        best = dict(best, suspensions=max(r["suspensions"] for r in runs))
        modes[key] = best
    none_p99 = modes["none"]["p99_s"]
    learned_p99 = modes["learned"]["p99_s"]
    hints_p99 = modes["hints"]["p99_s"]
    return {
        "label": label,
        "quick": quick,
        "sessions": SESSIONS,
        "events": events,
        "kv_mib": KV_BYTES // MiB,
        "gpu_slots": GPU_SLOTS,
        "host_slots": HOST_SLOTS,
        "repeats": repeats,
        **modes,
        "learned_over_none_ratio": round(learned_p99 / none_p99, 4)
        if none_p99
        else None,
        "learned_p99_reduction_pct": round(
            100.0 * (1.0 - learned_p99 / none_p99), 1
        )
        if none_p99
        else 0.0,
        "hints_predict_delta_pct": round(
            100.0 * (modes["hints_predict"]["p99_s"] / hints_p99 - 1.0), 1
        )
        if hints_p99
        else 0.0,
    }


def baseline_entry(baseline: dict, quick: bool):
    """The baseline measurement matching this run's ``--quick`` mode."""
    candidates = []
    if isinstance(baseline.get("learned"), dict):
        candidates.append(baseline)
    for value in baseline.values():
        if isinstance(value, dict) and isinstance(value.get("learned"), dict):
            candidates.append(value)
    matching = [c for c in candidates if c.get("quick", False) == quick]
    return matching[0] if matching else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument("--repeats", type=int, default=2, help="runs per mode (best-of)")
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--max-learned-ratio",
        type=float,
        default=0.7,
        help="fail when learned p99 exceeds this fraction of the none p99",
    )
    parser.add_argument(
        "--hint-tolerance",
        type=float,
        default=30.0,
        help="fail when hints+prediction p99 exceeds hints p99 by more "
        "than this percent",
    )
    parser.add_argument(
        "--hint-abs-tolerance",
        type=float,
        default=0.02,
        help="absolute nominal-seconds slack for the hint gate: deltas "
        "below this never fail, whatever the percentage",
    )
    parser.add_argument(
        "--require-suspension",
        action="store_true",
        help="fail unless the adversarial run suspends speculation",
    )
    parser.add_argument("--baseline", default=None, help="baseline JSON to gate against")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        help="fail when learned restore p99 exceeds baseline by this percent",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.repeats, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    failed = False
    ratio = result["learned_over_none_ratio"]
    if ratio is None or ratio > args.max_learned_ratio:
        print(
            f"GATE FAILED: learned p99 is {ratio}x the demand-only p99 "
            f"(> {args.max_learned_ratio}x allowed)",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: learned prefetch cut demand-restore p99 by "
            f"{result['learned_p99_reduction_pct']:.1f}% "
            f"({result['none']['p99_s']:.4f}s -> "
            f"{result['learned']['p99_s']:.4f}s, {ratio}x)",
            file=sys.stderr,
        )
    delta = result["hints_predict_delta_pct"]
    abs_delta = result["hints_predict"]["p99_s"] - result["hints"]["p99_s"]
    if delta > args.hint_tolerance and abs_delta > args.hint_abs_tolerance:
        print(
            f"GATE FAILED: enabling prediction on top of explicit hints "
            f"moved p99 by {delta:+.1f}% / {abs_delta:+.4f}s "
            f"(> {args.hint_tolerance:.0f}% and > "
            f"{args.hint_abs_tolerance:.3f}s)",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: hint mode unchanged within noise with prediction on "
            f"({result['hints']['p99_s']:.4f}s -> "
            f"{result['hints_predict']['p99_s']:.4f}s, {delta:+.1f}%, "
            f"{abs_delta:+.4f}s)",
            file=sys.stderr,
        )
    suspensions = result["adversarial"]["suspensions"]
    if args.require_suspension and suspensions < 1:
        print(
            "GATE FAILED: adversarial access did not suspend speculation",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: adversarial access suspended speculation {suspensions} "
            f"time(s) (hit/waste {result['adversarial']['spec_hits']}/"
            f"{result['adversarial']['spec_wastes']})",
            file=sys.stderr,
        )

    if args.baseline:
        with open(args.baseline) as fh:
            entry = baseline_entry(json.load(fh), args.quick)
        if entry is None:
            print(
                f"no baseline entry with quick={args.quick} in {args.baseline}; "
                "skipping regression gate",
                file=sys.stderr,
            )
        else:
            baseline_p99 = entry["learned"]["p99_s"]
            ceiling = baseline_p99 * (1.0 + args.max_regression / 100.0)
            current = result["learned"]["p99_s"]
            verdict = "OK" if current <= ceiling else "REGRESSION"
            print(
                f"{verdict}: learned restore p99 {current:.4f}s vs baseline "
                f"{baseline_p99:.4f}s (ceiling {ceiling:.4f}s)",
                file=sys.stderr,
            )
            if verdict != "OK":
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
