#!/usr/bin/env python
"""Data-reduction benchmark: tier traffic with and without the reduce pipeline.

Two engines flush RTM shots all the way to the parallel file system, with a
``similarity`` knob controlling how byte-correlated adjacent snapshots are
(RTM wavefields move slowly, so production traces sit near the high end).
The same workload runs twice — ``ReduceConfig.enabled=False`` (every tier
moves full logical bytes, today's behaviour) and ``enabled=True`` (chunked,
deduplicated, modeled-compressed physical bytes below the reduction site) —
and the figure of merit is the reduction in bytes written to the shared
PFS and SSD, plus the dedup hit rate and encode overhead that bought it.

Usage::

    PYTHONPATH=src python benchmarks/bench_reduction.py \
        --json BENCH_pr4.json [--quick] [--similarity 0.9] \
        [--min-pfs-reduction 25]

With ``--min-pfs-reduction`` the run fails (exit 1) when reduction saves
less than that percentage of PFS write bytes — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import CacheConfig, ReduceConfig, RuntimeConfig, ScaleModel
from repro.harness.approaches import make_engine_factory
from repro.tiers.topology import Cluster
from repro.util.units import GiB, KiB, MiB
from repro.workloads.multiproc import run_multiprocess_shot
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import variable_trace
from repro.workloads.shot import HintMode, ShotSpec

#: One nominal second lasts 10 ms: the figures of merit here are *byte*
#: counters, which wall-clock jitter cannot pollute, so the clock can run
#: much hotter than the latency benchmarks.
BENCH_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.01, alignment=512 * KiB)

COMPUTE_INTERVAL = 0.05  # nominal seconds between operations
SEED = 11


def build_config(reduce_enabled: bool) -> RuntimeConfig:
    return RuntimeConfig(
        scale=BENCH_SCALE,
        # Small caches force the history down the cascade: the interesting
        # traffic is on the SSD/PFS write links, not in the caches.
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=1 * GiB),
        processes_per_node=2,
        charge_allocation_cost=False,
        reduce=ReduceConfig(enabled=reduce_enabled),
    )


def build_specs(cfg: RuntimeConfig, snapshots: int, similarity: float):
    specs = []
    for rank in range(cfg.processes_per_node):
        trace = variable_trace(
            cfg.scale, rank=rank, seed=SEED, num_snapshots=snapshots,
            total_bytes=snapshots * 128 * MiB,
        )
        specs.append(
            ShotSpec(
                trace=trace,
                restore_order=restore_order(
                    RestoreOrder.REVERSE, len(trace), seed=SEED, rank=rank
                ),
                hint_mode=HintMode.ALL,
                compute_interval=COMPUTE_INTERVAL,
                wait_for_flush=True,
                similarity=similarity,
                seed=SEED,
            )
        )
    return specs


def run_mode(reduce_enabled: bool, snapshots: int, similarity: float) -> dict:
    cfg = build_config(reduce_enabled)
    started = time.perf_counter()
    with Cluster(cfg) as cluster:
        specs = build_specs(cfg, snapshots, similarity)
        factory = make_engine_factory("score", flush_to_pfs=True)
        results = run_multiprocess_shot(cluster, factory, specs)
        registry = cluster.telemetry.registry
        logical_total = sum(spec.trace.total_bytes for spec in specs)
        out = {
            "reduce": reduce_enabled,
            "wall_s": round(time.perf_counter() - started, 3),
            "logical_bytes": logical_total,
            "pfs_write_bytes": int(registry.counter("tier.pfs.write_bytes").value),
            "ssd_write_bytes": int(registry.counter("tier.ssd.write_bytes").value),
            "d2h_bytes": int(registry.counter("flush.d2h.bytes").value),
        }
        if reduce_enabled:
            stats = [r.engine_stats["reduction"] for r in results]
            new = sum(s["new_chunks"] for s in stats)
            dup = sum(s["dup_chunks"] for s in stats)
            delta = sum(s["delta_chunks"] for s in stats)
            out["reduction"] = {
                "encodes": sum(s["encodes"] for s in stats),
                "rebases": sum(s["rebases"] for s in stats),
                "physical_bytes": int(sum(s["physical_bytes"] for s in stats)),
                "new_chunks": int(new),
                "dup_chunks": int(dup),
                "delta_chunks": int(delta),
                "dedup_hit_rate_pct": round(100.0 * dup / max(1, new + dup + delta), 1),
            }
        return out


def saved_pct(off_bytes: int, on_bytes: int) -> float:
    if off_bytes <= 0:
        return 0.0
    return round(100.0 * (off_bytes - on_bytes) / off_bytes, 1)


def run(quick: bool, similarity: float, label: str) -> dict:
    snapshots = 24 if quick else 96
    modes = {}
    for key, enabled in (("off", False), ("on", True)):
        modes[key] = run_mode(enabled, snapshots, similarity)
        print(
            f"  reduce={key}: PFS {modes[key]['pfs_write_bytes'] / MiB:.0f} MiB, "
            f"SSD {modes[key]['ssd_write_bytes'] / MiB:.0f} MiB "
            f"({modes[key]['wall_s']:.2f}s wall)",
            file=sys.stderr,
        )
    return {
        "label": label,
        "quick": quick,
        "engines": 2,
        "snapshots": snapshots,
        "similarity": similarity,
        "off": modes["off"],
        "on": modes["on"],
        "pfs_reduction_pct": saved_pct(
            modes["off"]["pfs_write_bytes"], modes["on"]["pfs_write_bytes"]
        ),
        "ssd_reduction_pct": saved_pct(
            modes["off"]["ssd_write_bytes"], modes["on"]["ssd_write_bytes"]
        ),
        "d2h_reduction_pct": saved_pct(
            modes["off"]["d2h_bytes"], modes["on"]["d2h_bytes"]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced workload (CI smoke)")
    parser.add_argument(
        "--similarity",
        type=float,
        default=0.9,
        help="snapshot-to-snapshot payload similarity (default: 0.9)",
    )
    parser.add_argument("--label", default="after", help="label stored in the result JSON")
    parser.add_argument("--json", default=None, help="write the result JSON here")
    parser.add_argument(
        "--min-pfs-reduction",
        type=float,
        default=None,
        help="fail unless reduction saves at least this percent of PFS write bytes",
    )
    args = parser.parse_args(argv)

    result = run(args.quick, args.similarity, args.label)
    print(json.dumps(result, indent=2))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    if args.min_pfs_reduction is not None:
        saved = result["pfs_reduction_pct"]
        verdict = "OK" if saved >= args.min_pfs_reduction else "SHORTFALL"
        print(
            f"{verdict}: reduction saved {saved:.1f}% of PFS write bytes "
            f"(gate {args.min_pfs_reduction:.1f}%)",
            file=sys.stderr,
        )
        if verdict != "OK":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
