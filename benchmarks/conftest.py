"""Benchmark configuration.

Each figure bench replays the corresponding experiment grid from
:mod:`repro.harness.figures` and prints the paper-style table.  Scale knobs
(environment variables):

* ``REPRO_BENCH_SNAPSHOTS`` — snapshots per rank (default 48; the paper
  uses 384 — larger values sharpen the shapes at the cost of wall time).
* ``REPRO_BENCH_FULL=1`` — run the full order × approach grids instead of
  the reduced default grid.

Throughput numbers are nominal (paper-unit) bytes/second; wall time of a
bench is dominated by the scaled virtual-time simulation, so the
pytest-benchmark timings measure *simulation cost*, not checkpoint speed —
the interesting output is the printed table and the ``extra_info``.
"""

from __future__ import annotations

import os

import pytest

SNAPSHOTS = int(os.environ.get("REPRO_BENCH_SNAPSHOTS", "48"))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def bench_snapshots() -> int:
    return SNAPSHOTS


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return FULL


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _merged_metrics(result) -> dict:
    """Fold every experiment's telemetry snapshot into one registry view."""
    from repro.telemetry import MetricsRegistry

    merged = MetricsRegistry()
    found = False
    for exp_result in result.extras.get("results", []):
        metrics = getattr(exp_result, "metrics", None)
        if metrics:
            merged.merge(metrics)
            found = True
    return merged.snapshot() if found else {}


def attach_rows(benchmark, result) -> None:
    """Store the figure rows in the benchmark report, print the table, and
    persist it under ``benchmarks/results/`` for EXPERIMENTS.md."""
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["rows"] = [[str(c) for c in row] for row in result.rows]
    telemetry = _merged_metrics(result)
    if telemetry:
        benchmark.extra_info["telemetry"] = telemetry
    print()
    print(result.rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.figure}-{SNAPSHOTS}.txt")
    with open(path, "a") as fh:
        fh.write(result.rendered + "\n\n")
