"""Figure 8: sensitivity to the compute interval (8a) and the GPU cache
size (8b), variable sizes, irregular restore order.

Shape checks:

* 8a — restore throughput of the cache-aware approaches rises with a larger
  compute interval (more slack for prefetches); ADIOS2 stays flat and slow.
* 8b — a larger GPU cache helps the cache-aware approaches; ADIOS2 is
  insensitive to it (it has no device cache).
"""

import pytest

from benchmarks.conftest import FULL, SNAPSHOTS, attach_rows, run_once
from repro.harness.figures import fig8a_compute_interval, fig8b_gpu_cache

_INTERVALS = (0.010, 0.020, 0.030) if FULL else (0.010, 0.030)
_FRACTIONS = (2 / 48, 4 / 48, 8 / 48, 16 / 48) if FULL else (2 / 48, 16 / 48)


def _parse_rate(cell: str) -> float:
    from repro.util.units import parse_bandwidth

    return parse_bandwidth(cell)


@pytest.mark.benchmark(group="fig8")
def test_fig8a_compute_interval(benchmark):
    result = run_once(
        benchmark, fig8a_compute_interval, intervals=_INTERVALS, num_snapshots=SNAPSHOTS
    )
    attach_rows(benchmark, result)
    # Restore rate at the largest interval >= at the smallest for Score-all.
    score_rows = [r for r in result.rows if r[1] == "All hints, Score"]
    first, last = _parse_rate(score_rows[0][3]), _parse_rate(score_rows[-1][3])
    assert last >= first * 0.7  # monotone within noise
    # ADIOS2 insensitive to the interval (its costs are per-byte).
    adios_rows = [r for r in result.rows if "ADIOS2" in r[1]]
    rates = [_parse_rate(r[3]) for r in adios_rows]
    assert max(rates) < 2.5 * min(rates)


@pytest.mark.benchmark(group="fig8")
def test_fig8b_gpu_cache(benchmark):
    result = run_once(benchmark, fig8b_gpu_cache, fractions=_FRACTIONS, num_snapshots=SNAPSHOTS)
    attach_rows(benchmark, result)
    adios_rows = [r for r in result.rows if "ADIOS2" in r[1]]
    rates = [_parse_rate(r[3]) for r in adios_rows]
    # No GPU cache: ADIOS2 unchanged across cache sizes.
    assert max(rates) < 2.5 * min(rates)
    # Cache-aware approaches benefit from a larger device cache.  Use the
    # low-variance signals: checkpoint throughput with all hints (a bigger
    # cache delays evictions) and the combined Score restore rates.
    ckpt_rows = [r for r in result.rows if r[1] == "All hints, Score"]
    small_c, large_c = _parse_rate(ckpt_rows[0][2]), _parse_rate(ckpt_rows[-1][2])
    assert large_c >= small_c * 0.7
    small_r = sum(
        _parse_rate(r[3]) for r in result.rows[: len(result.rows) // 2] if "Score" in r[1]
    )
    large_r = sum(
        _parse_rate(r[3]) for r in result.rows[len(result.rows) // 2 :] if "Score" in r[1]
    )
    assert large_r >= small_r * 0.5
