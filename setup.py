"""Shim so `pip install -e .` works on environments without the `wheel`
package (legacy editable installs go through `setup.py develop`).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
