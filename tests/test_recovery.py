"""Restart recovery: rebuilding state from the durable tiers.

The classic checkpoint-restart flow: a process dies after its checkpoints
reached the SSD; its replacement (same rank) recovers the catalog from the
store metadata and restores verified data.
"""

import pytest

from repro.core.client import Client
from repro.core.engine import ScoreEngine
from repro.errors import IntegrityError
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB


class TestEngineRecovery:
    def test_recover_after_engine_death(self, cluster, context):
        # First incarnation: checkpoint, flush, die.
        engine = ScoreEngine(context)
        sums = {}
        for v in range(6):
            buf = make_buffer(context, CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes()
        engine.close()  # "failure"

        # Second incarnation on the same rank: recover and restore.
        engine2 = ScoreEngine(context)
        try:
            assert len(engine2.catalog) == 0
            recovered = engine2.recover_history()
            assert recovered == 6
            out = context.device.alloc_buffer(CKPT)
            for v in range(6):
                assert engine2.recover_size(v) == CKPT
                engine2.restore(v, out)
                assert out.checksum() == sums[v]
        finally:
            engine2.close()

    def test_recovery_is_idempotent(self, context):
        engine = ScoreEngine(context)
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        engine.close()
        engine2 = ScoreEngine(context)
        try:
            assert engine2.recover_history() == 1
            assert engine2.recover_history() == 0  # already known
        finally:
            engine2.close()

    def test_recovery_scoped_to_process(self, cluster):
        cfg = tiny_config(processes_per_node=2)
        with Cluster(cfg) as c:
            ctxs = c.process_contexts()
            e0 = ScoreEngine(ctxs[0])
            e0.checkpoint(0, make_buffer(ctxs[0], CKPT))
            e0.wait_for_flushes()
            e0.close()
            # A different rank on the same node sees nothing to recover.
            e1 = ScoreEngine(ctxs[1])
            try:
                assert e1.recover_history() == 0
            finally:
                e1.close()

    def test_recovered_checksum_still_verified(self, context):
        engine = ScoreEngine(context)
        engine.checkpoint(0, make_buffer(context, CKPT, seed=1))
        engine.wait_for_flushes()
        engine.close()
        # Corrupt the durable payload; recovery metadata keeps the original
        # checksum, so the restore must fail loudly.
        payload, _ = context.ssd.get((context.process_id, 0))
        payload = payload.copy()  # get() returns a read-only view
        payload[0] ^= 0xFF
        meta = context.ssd.meta((context.process_id, 0))
        context.ssd.put((context.process_id, 0), payload, 128 * MiB, meta=meta)
        engine2 = ScoreEngine(context)
        try:
            engine2.recover_history()
            with pytest.raises(IntegrityError):
                engine2.restore(0, context.device.alloc_buffer(CKPT))
        finally:
            engine2.close()

    def test_recovery_from_file_backed_ssd_across_clusters(self, tmp_path):
        """A *full* restart: a brand-new cluster re-indexes the on-disk
        checkpoints via the metadata sidecar files."""
        cfg = tiny_config(ssd_directory=str(tmp_path))
        sums = {}
        with Cluster(cfg) as c1:
            ctx = c1.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                for v in range(4):
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                engine.wait_for_flushes()
        # New cluster = new process, new SsdStore over the same directory.
        with Cluster(cfg) as c2:
            ctx = c2.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                assert engine.recover_history() == 4
                out = ctx.device.alloc_buffer(CKPT)
                for v in range(4):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]


class TestClientRecovery:
    def test_client_recover_lists_versions(self, context):
        client = Client.create(context)
        buf = make_buffer(context, CKPT, seed=1)
        client.mem_protect(1, buf)
        for v in range(3):
            buf.fill_random(make_rng(v, "w"))
            client.checkpoint("w", v)
        client.wait_for_flushes()
        client.close()

        client2 = Client.create(context)
        try:
            versions = client2.recover()
            assert versions == [0, 1, 2]
            out = context.device.alloc_buffer(CKPT)
            client2.mem_protect(1, out)
            assert client2.recover_size(1, 1) == CKPT
            client2.restart(1)
        finally:
            client2.close()
