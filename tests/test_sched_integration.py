"""Engine-level behaviour with QoS transfer scheduling enabled."""

import threading

import pytest

from repro.config import SchedConfig
from repro.core.engine import ScoreEngine
from repro.errors import BackpressureError, FlushTimeoutError
from repro.sched import render_sched_timeline, sched_events
from repro.tiers.topology import Cluster

from .conftest import make_buffer, tiny_config


def sched_cluster(**sched_changes):
    changes = dict(enabled=True)
    changes.update(sched_changes)
    return Cluster(tiny_config(sched=SchedConfig(**changes), telemetry=True))


def run_workload(engine, context, n=8, reverse_restore=True):
    """Checkpoint ``n`` buffers, hint, and restore them; verify integrity."""
    for i in range(n):
        engine.checkpoint(i, make_buffer(context, seed=i))
    order = list(reversed(range(n))) if reverse_restore else list(range(n))
    for i in order:
        engine.prefetch_enqueue(i)
    engine.prefetch_start()
    out = make_buffer(context, seed=999)
    for i in order:
        engine.restore(i, out)  # verify_restores=True checks the checksum


def test_roundtrip_with_scheduling_enabled():
    with sched_cluster() as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            run_workload(engine, context)
            engine.wait_for_flushes(timeout=600.0)
            assert engine.stats()["checkpoints"] == 8
        snapshots = cluster.sched.snapshot()
        assert snapshots, "links should have arbiters attached"
        assert sum(s["grants"] for s in snapshots) > 0


def test_demand_classes_served_and_traced():
    with sched_cluster() as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            run_workload(engine, context)
            engine.wait_for_flushes(timeout=600.0)
        registry = cluster.telemetry.registry
        assert registry.counter("sched.class.cascade_flush.served").value > 0
        events = sched_events(cluster.telemetry.bus.snapshot())
        assert events, "scheduler must trace queue events"
        text = render_sched_timeline(events)
        assert "transfer-scheduler timeline" in text
        assert "ssd-write" in text


def test_checkpoint_backpressure_blocks():
    with sched_cluster(max_flush_backlog=1, admission="block") as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            release = threading.Event()
            # Hold the flush stream so the backlog cannot drain by itself.
            engine.flusher.d2h_stream.submit(lambda: release.wait(5), label="hold")
            done = threading.Event()

            def blocked_checkpoint():
                engine.checkpoint(0, make_buffer(context, seed=0))
                done.set()

            t = threading.Thread(target=blocked_checkpoint)
            t.start()
            assert not done.wait(0.2), "checkpoint should be backpressured"
            release.set()
            assert done.wait(10)
            t.join(timeout=5)
            backpressure = cluster.telemetry.registry.histogram(
                "engine.checkpoint.backpressure_s"
            )
            assert backpressure.count >= 1
            engine.wait_for_flushes(timeout=600.0)


def test_checkpoint_backpressure_sheds():
    with sched_cluster(max_flush_backlog=1, admission="shed") as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            release = threading.Event()
            engine.flusher.d2h_stream.submit(lambda: release.wait(5), label="hold")
            try:
                with pytest.raises(BackpressureError):
                    engine.checkpoint(0, make_buffer(context, seed=0))
            finally:
                release.set()
            assert cluster.telemetry.registry.counter("engine.checkpoint.shed").value == 1
            # After the backlog drains, checkpointing works again.
            engine.flusher.d2h_stream.wait_depth_below(1, timeout=5)
            engine.checkpoint(1, make_buffer(context, seed=1))
            engine.wait_for_flushes(timeout=600.0)


def test_admission_off_never_intervenes():
    with sched_cluster(max_flush_backlog=1, admission="off") as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            release = threading.Event()
            engine.flusher.d2h_stream.submit(lambda: release.wait(5), label="hold")
            try:
                engine.checkpoint(0, make_buffer(context, seed=0))  # no shed/block
            finally:
                release.set()
            engine.wait_for_flushes(timeout=600.0)


def test_wait_for_flushes_timeout_diagnostics():
    with sched_cluster() as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            release = threading.Event()
            engine.flusher.d2h_stream.submit(lambda: release.wait(10), label="hold")
            try:
                with pytest.raises(FlushTimeoutError) as excinfo:
                    engine.wait_for_flushes(timeout=0.5)
            finally:
                release.set()
            message = str(excinfo.value)
            assert "still pending" in message
            assert "d2h=" in message  # stream depths are in the diagnostics
            assert "h2f=" in message
            with pytest.raises(ValueError):
                engine.wait_for_flushes(timeout=-1.0)
            # Once the stall clears, the same call drains normally.
            assert engine.wait_for_flushes(timeout=600.0) >= 0.0


def test_wait_for_flushes_timeout_without_scheduling():
    """The timeout satellite works with the scheduler disabled too."""
    with Cluster(tiny_config()) as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context) as engine:
            release = threading.Event()
            engine.flusher.d2h_stream.submit(lambda: release.wait(10), label="hold")
            try:
                with pytest.raises(FlushTimeoutError):
                    engine.wait_for_flushes(timeout=0.5)
            finally:
                release.set()
            engine.wait_for_flushes()  # untimed wait still drains


def test_flush_to_pfs_roundtrip_under_scheduling():
    """Cascade flush f2p read-back shares the SSD read link with demand
    restores; the full cascade must still complete and verify."""
    with sched_cluster() as cluster:
        context = cluster.process_contexts()[0]
        with ScoreEngine(context, flush_to_pfs=True) as engine:
            run_workload(engine, context, n=6)
            engine.wait_for_flushes(timeout=600.0)
            assert cluster.pfs.object_count() > 0


def test_scheduling_off_is_the_default_and_attaches_nothing():
    with Cluster(tiny_config()) as cluster:
        assert not cluster.sched.enabled
        assert cluster.sched.snapshot() == []
        assert cluster.nodes[0].ssd.read_link.scheduler is None


def test_two_engines_share_links_with_scheduling():
    """Two co-located engines (one PCIe pair, one SSD) run concurrently
    under arbitration with correct restores on both."""
    with Cluster(
        tiny_config(
            processes_per_node=2, sched=SchedConfig(enabled=True), telemetry=True
        )
    ) as cluster:
        contexts = cluster.process_contexts()
        engines = [ScoreEngine(ctx) for ctx in contexts]
        try:
            errors = []

            def worker(engine, context):
                try:
                    run_workload(engine, context, n=6)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(engine, ctx))
                for engine, ctx in zip(engines, contexts)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            for engine in engines:
                engine.wait_for_flushes(timeout=600.0)
        finally:
            for engine in engines:
                engine.close()
        assert sum(s["grants"] for s in cluster.sched.snapshot()) > 0
