"""Unit tests for the fault-injection subsystem (:mod:`repro.faults`).

Covers the deterministic :class:`FaultPlan`, the per-link injector, the
budgeted retry policy, the circuit-breaker state machine, the cluster-wide
:class:`FaultDomain` gates, and the config validation for the two new
config blocks.  Integration behaviour (self-healing flushes, recovery)
lives in ``tests/test_faults_recovery.py``.
"""

import pytest

from repro.config import ConfigError, FaultConfig, ResilienceConfig
from repro.errors import TierOfflineError, TransferError, TransientTransferError
from repro.faults import (
    CircuitBreaker,
    FaultDomain,
    FaultPlan,
    HealthRegistry,
    LinkFaultInjector,
    RetryPolicy,
    run_with_retries,
)
from repro.util.units import MiB

NBYTES = 128 * MiB


class ManualClock:
    """Hand-advanced clock: unit tests step virtual time explicitly so
    outage windows and breaker cool-downs are exact (the real
    :class:`~repro.clock.VirtualClock` is wall-driven)."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, virtual_seconds: float) -> None:
        assert virtual_seconds >= 0
        self._now += virtual_seconds


def fast_clock():
    return ManualClock()


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        cfg = FaultConfig(enabled=True, transfer_fault_rate=0.3, seed=7)
        a = FaultPlan(cfg)
        b = FaultPlan(cfg)
        stream_a = [a.transfer_fault("h2f-link", seq, NBYTES) for seq in range(200)]
        stream_b = [b.transfer_fault("h2f-link", seq, NBYTES) for seq in range(200)]
        assert stream_a == stream_b
        assert any(cut is not None for cut in stream_a)

    def test_seed_changes_the_stream(self):
        base = FaultConfig(enabled=True, transfer_fault_rate=0.3, seed=7)
        other = FaultConfig(enabled=True, transfer_fault_rate=0.3, seed=8)
        stream_a = [FaultPlan(base).transfer_fault("x", s, NBYTES) for s in range(200)]
        stream_b = [FaultPlan(other).transfer_fault("x", s, NBYTES) for s in range(200)]
        assert stream_a != stream_b

    def test_rate_bounds(self):
        never = FaultPlan(FaultConfig(enabled=True, transfer_fault_rate=0.0))
        assert all(never.transfer_fault("x", s, NBYTES) is None for s in range(50))
        cfg = FaultConfig(
            enabled=True,
            transfer_fault_rate=1.0,
            min_fault_fraction=0.25,
            max_fault_fraction=0.75,
        )
        always = FaultPlan(cfg)
        for seq in range(50):
            cut = always.transfer_fault("x", seq, NBYTES)
            assert cut is not None
            assert 1 <= cut <= NBYTES - 1
            assert 0.25 * NBYTES <= cut <= 0.75 * NBYTES

    def test_link_filter(self):
        cfg = FaultConfig(enabled=True, transfer_fault_rate=1.0, fault_links=("ssd",))
        plan = FaultPlan(cfg)
        assert plan.transfer_fault("node0-ssd-write", 0, NBYTES) is not None
        assert plan.transfer_fault("d2h", 0, NBYTES) is None

    def test_outage_windows(self):
        cfg = FaultConfig(
            enabled=True,
            tier_outages=(("ssd", 10.0, 20.0, 0.0), ("pfs", 5.0, 8.0, 0.25)),
        )
        plan = FaultPlan(cfg)
        assert plan.outage("ssd", 9.9) is None
        assert plan.outage("ssd", 10.0) == 0.0
        assert plan.outage("ssd", 19.9) == 0.0
        assert plan.outage("ssd", 20.0) is None  # end-exclusive
        assert plan.outage("pfs", 6.0) == 0.25
        assert plan.outage("pfs", 12.0) is None

    def test_corruption_is_attempt_indexed(self):
        cfg = FaultConfig(enabled=True, corruption_rate=1.0)
        plan = FaultPlan(cfg)
        first = plan.corrupt("node0-ssd", (0, 3), 0, 4096)
        again = plan.corrupt("node0-ssd", (0, 3), 0, 4096)
        assert first == again  # same attempt -> same decision
        assert first is not None and 0 <= first < 4096

    def test_crash_point_normalization(self):
        bare = FaultPlan(FaultConfig(enabled=True, crash_point="h2f"))
        assert bare.crash_matches("before-h2f", 0)
        assert not bare.crash_matches("after-h2f", 0)
        after = FaultPlan(FaultConfig(enabled=True, crash_point="after-f2p"))
        assert after.crash_matches("after-f2p", 5)
        assert not after.crash_matches("before-f2p", 5)

    def test_crash_point_ckpt_filter(self):
        plan = FaultPlan(FaultConfig(enabled=True, crash_point="d2h", crash_ckpt=3))
        assert not plan.crash_matches("before-d2h", 2)
        assert plan.crash_matches("before-d2h", 3)


class TestLinkFaultInjector:
    def test_draw_and_fault(self):
        plan = FaultPlan(FaultConfig(enabled=True, transfer_fault_rate=1.0))
        inj = LinkFaultInjector("h2f", plan)
        cut = inj.draw(NBYTES)
        assert cut is not None
        err = inj.fault(NBYTES, cut)
        assert isinstance(err, TransientTransferError)
        assert err.bytes_moved == cut
        assert inj.faults_injected == 1

    def test_sequence_advances(self):
        plan = FaultPlan(FaultConfig(enabled=True, transfer_fault_rate=0.5))
        inj = LinkFaultInjector("x", plan)
        draws = [inj.draw(NBYTES) for _ in range(100)]
        # The per-link counter walks the plan's sequence: both outcomes occur.
        assert any(d is None for d in draws)
        assert any(d is not None for d in draws)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        cfg = ResilienceConfig(
            enabled=True,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_max_s=0.5,
            jitter=0.25,
        )
        policy = RetryPolicy(cfg, seed=1)
        for attempt in range(6):
            base = min(0.1 * 2.0 ** attempt, 0.5)
            delay = policy.backoff(attempt, "h2f", 3)
            assert base <= delay <= base * 1.25

    def test_backoff_deterministic(self):
        cfg = ResilienceConfig(enabled=True)
        assert RetryPolicy(cfg, 5).backoff(2, "d2s", 1) == RetryPolicy(cfg, 5).backoff(
            2, "d2s", 1
        )
        assert RetryPolicy(cfg, 5).backoff(2, "d2s", 1) != RetryPolicy(cfg, 6).backoff(
            2, "d2s", 1
        )

    def test_class_budget_overrides(self):
        cfg = ResilienceConfig(
            enabled=True,
            max_retries=4,
            retry_classes=(("SPECULATIVE_PREFETCH", 0), ("DEMAND_READ", 7)),
        )
        policy = RetryPolicy(cfg, seed=0)
        assert policy.budget("SPECULATIVE_PREFETCH") == 0
        assert policy.budget("DEMAND_READ") == 7
        assert policy.budget("CASCADE_FLUSH") == 4


class TestRunWithRetries:
    def _flaky(self, failures):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise TransientTransferError("injected", bytes_moved=0)
            return "ok"

        return fn, calls

    def test_retries_until_success(self):
        clock = fast_clock()
        policy = RetryPolicy(ResilienceConfig(enabled=True, max_retries=4), seed=0)
        fn, calls = self._flaky(3)
        started = clock.now()
        assert (
            run_with_retries(
                fn, policy=policy, clock=clock, class_name="CASCADE_FLUSH",
                labels=("t",),
            )
            == "ok"
        )
        assert calls["n"] == 4
        assert clock.now() > started  # backoff charged on the virtual clock

    def test_budget_exhaustion_raises(self):
        policy = RetryPolicy(ResilienceConfig(enabled=True, max_retries=2), seed=0)
        fn, calls = self._flaky(10)
        with pytest.raises(TransientTransferError):
            run_with_retries(
                fn, policy=policy, clock=fast_clock(), class_name="CASCADE_FLUSH",
                labels=("t",),
            )
        assert calls["n"] == 3  # first attempt + 2 retries

    def test_none_policy_is_a_plain_call(self):
        fn, calls = self._flaky(1)
        with pytest.raises(TransientTransferError):
            run_with_retries(
                fn, policy=None, clock=fast_clock(), class_name="X", labels=()
            )
        assert calls["n"] == 1

    def test_should_abort_short_circuits(self):
        policy = RetryPolicy(ResilienceConfig(enabled=True, max_retries=5), seed=0)
        fn, calls = self._flaky(10)
        with pytest.raises(TransientTransferError):
            run_with_retries(
                fn, policy=policy, clock=fast_clock(), class_name="X",
                labels=(), should_abort=lambda: True,
            )
        assert calls["n"] == 1

    def test_non_transient_errors_propagate(self):
        policy = RetryPolicy(ResilienceConfig(enabled=True, max_retries=5), seed=0)

        def fn():
            raise TransferError("cancelled")

        with pytest.raises(TransferError):
            run_with_retries(
                fn, policy=policy, clock=fast_clock(), class_name="X", labels=()
            )


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset_s=5.0):
        return CircuitBreaker("node0-ssd", threshold, reset_s, clock)

    def test_opens_after_consecutive_failures(self):
        brk = self.make(fast_clock())
        assert brk.allow()
        brk.record_failure()
        brk.record_failure()
        assert brk.state == "closed"
        brk.record_failure()
        assert brk.state == "open"
        assert not brk.allow()
        assert brk.opens == 1

    def test_success_resets_the_count(self):
        brk = self.make(fast_clock())
        brk.record_failure()
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        brk.record_failure()
        assert brk.state == "closed"  # never 3 consecutive

    def test_half_open_probe_cycle(self):
        clock = fast_clock()
        brk = self.make(clock, threshold=1, reset_s=5.0)
        brk.record_failure()
        assert not brk.allow()
        clock.sleep(5.0)
        assert brk.allow()  # the single half-open probe
        assert not brk.allow()  # second caller must wait for the probe
        brk.record_success()
        assert brk.state == "closed"
        assert brk.allow()

    def test_half_open_failure_reopens(self):
        clock = fast_clock()
        brk = self.make(clock, threshold=1, reset_s=5.0)
        brk.record_failure()
        clock.sleep(5.0)
        assert brk.allow()
        brk.record_failure()
        assert brk.state == "open"
        assert not brk.allow()  # cool-down restarted
        assert brk.opens == 2

    def test_snapshot(self):
        brk = self.make(fast_clock(), threshold=1)
        brk.record_failure()
        snap = brk.snapshot()
        assert snap == {"state": "open", "failures": 1, "opens": 1}


class TestHealthRegistry:
    def test_disabled_is_inert(self):
        reg = HealthRegistry(ResilienceConfig(enabled=False), fast_clock())
        for _ in range(10):
            reg.failure("node0-ssd")
        assert reg.allow("node0-ssd")
        assert reg.healthy("node0-ssd")
        assert reg.snapshot() == {}

    def test_enabled_tracks_per_tier(self):
        reg = HealthRegistry(
            ResilienceConfig(enabled=True, breaker_threshold=2), fast_clock()
        )
        reg.failure("node0-ssd")
        reg.failure("node0-ssd")
        assert not reg.allow("node0-ssd")
        assert not reg.healthy("node0-ssd")
        assert reg.allow("pfs")  # independent breakers
        snap = reg.snapshot()
        assert snap["node0-ssd"]["state"] == "open"

    def test_healthy_never_consumes_the_probe(self):
        clock = fast_clock()
        reg = HealthRegistry(
            ResilienceConfig(enabled=True, breaker_threshold=1, breaker_reset_s=1.0),
            clock,
        )
        reg.failure("pfs")
        clock.sleep(1.0)
        # Read-side routing checks must not eat the write-side probe slot.
        assert not reg.healthy("pfs")  # still OPEN until a probe runs
        assert reg.allow("pfs")  # write side takes the probe
        assert not reg.allow("pfs")


class TestFaultDomain:
    def make(self, fault_cfg, resilience=None, clock=None):
        return FaultDomain(
            fault_cfg, resilience or ResilienceConfig(), clock or fast_clock()
        )

    def test_disabled_domain_is_inert(self):
        dom = self.make(FaultConfig(enabled=False, transfer_fault_rate=1.0))
        assert dom.plan is None
        assert not dom.meta_crc
        assert dom.tier_gate("ssd", "node0-ssd", "put", (0, 0)) == 1.0
        assert not dom.hard_outage("ssd")
        assert dom.corruption("node0-ssd", (0, 0), 4096) is None
        assert not dom.crash_point("before-h2f", 0)

        class FakeLink:
            name = "node0-ssd-write"
            fault_injector = None

        link = FakeLink()
        dom.attach(link)
        assert link.fault_injector is None

    def test_meta_crc_follows_either_switch(self):
        assert self.make(FaultConfig(enabled=True)).meta_crc
        assert FaultDomain(
            FaultConfig(), ResilienceConfig(enabled=True), fast_clock()
        ).meta_crc
        assert not self.make(FaultConfig()).meta_crc

    def test_hard_outage_gate_raises(self):
        clock = fast_clock()
        dom = self.make(
            FaultConfig(enabled=True, tier_outages=(("ssd", 1.0, 2.0, 0.0),)),
            clock=clock,
        )
        assert dom.tier_gate("ssd", "node0-ssd", "put", (0, 0)) == 1.0
        clock.sleep(1.5)
        assert dom.hard_outage("ssd")
        with pytest.raises(TierOfflineError):
            dom.tier_gate("ssd", "node0-ssd", "put", (0, 0))
        assert dom.snapshot()["outage_hits"] == 1
        clock.sleep(1.0)  # window over
        assert dom.tier_gate("ssd", "node0-ssd", "put", (0, 0)) == 1.0
        assert not dom.hard_outage("ssd")

    def test_brownout_returns_slowdown(self):
        clock = fast_clock()
        dom = self.make(
            FaultConfig(enabled=True, tier_outages=(("pfs", 0.0, 10.0, 0.25),)),
            clock=clock,
        )
        assert dom.tier_gate("pfs", "pfs", "get", (0, 1)) == pytest.approx(4.0)
        assert not dom.hard_outage("pfs")  # brownout, not an outage

    def test_crash_point_is_one_shot(self):
        dom = self.make(FaultConfig(enabled=True, crash_point="h2f"))
        assert not dom.crash_point("before-d2h", 0)
        assert dom.crash_point("before-h2f", 0)
        assert not dom.crash_point("before-h2f", 1)  # fired already
        assert dom.snapshot()["crashes"] == 1

    def test_corruption_attempt_counter_advances(self):
        dom = self.make(FaultConfig(enabled=True, corruption_rate=1.0))
        first = dom.corruption("node0-ssd", (0, 0), 4096)
        second = dom.corruption("node0-ssd", (0, 0), 4096)
        assert first is not None and second is not None
        assert dom.snapshot()["corruptions"] == 2


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transfer_fault_rate": 1.5},
            {"transfer_fault_rate": -0.1},
            {"corruption_rate": 2.0},
            {"min_fault_fraction": 0.0},
            {"min_fault_fraction": 0.9, "max_fault_fraction": 0.5},
            {"max_fault_fraction": 1.0},
            {"tier_outages": (("ssd", 1.0, 2.0),)},
        ],
    )
    def test_bad_fault_config(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.5},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"retry_classes": (("DEMAND_READ",),)},
            {"retry_classes": (("DEMAND_READ", -2),)},
        ],
    )
    def test_bad_resilience_config(self, kwargs):
        with pytest.raises(ConfigError):
            ResilienceConfig(**kwargs)

    def test_defaults_are_off(self):
        assert not FaultConfig().enabled
        assert not ResilienceConfig().enabled
