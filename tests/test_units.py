"""Unit parsing/formatting (repro.util.units)."""

import pytest

from repro.errors import ConfigError
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    format_bandwidth,
    format_size,
    parse_bandwidth,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_integral_float(self):
        assert parse_size(1024.0) == 1024

    def test_mb_is_binary(self):
        assert parse_size("128MB") == 128 * MiB

    def test_gib_spelling(self):
        assert parse_size("4 GiB") == 4 * GiB

    def test_short_suffix(self):
        assert parse_size("0.5g") == GiB // 2

    def test_kb(self):
        assert parse_size("64kb") == 64 * KiB

    def test_tb(self):
        assert parse_size("2TB") == 2 * TiB

    def test_bare_bytes(self):
        assert parse_size("17") == 17

    def test_b_suffix(self):
        assert parse_size("17b") == 17

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("1.0000001")

    def test_negative_int_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_non_integral_float_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(1.5)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("twelve")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("4 parsecs")

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(True)

    def test_none_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(None)


class TestFormatSize:
    def test_mib(self):
        assert format_size(128 * MiB) == "128MiB"

    def test_gib(self):
        assert format_size(4 * GiB) == "4GiB"

    def test_fractional(self):
        assert format_size(int(1.5 * GiB)) == "1.50GiB"

    def test_small(self):
        assert format_size(17) == "17B"

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_size(-1)

    def test_roundtrip(self):
        for value in (1, KiB, 3 * MiB, 7 * GiB, TiB):
            assert parse_size(format_size(value)) == value


class TestBandwidth:
    def test_parse_gbps(self):
        assert parse_bandwidth("25GB/s") == pytest.approx(25 * GiB)

    def test_parse_number(self):
        assert parse_bandwidth(1000) == 1000.0

    def test_parse_without_per_second(self):
        assert parse_bandwidth("4GiB") == pytest.approx(4 * GiB)

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            parse_bandwidth(0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_bandwidth("-4GB/s")

    def test_format(self):
        assert format_bandwidth(25 * GiB) == "25GiB/s"

    def test_format_fractional(self):
        assert format_bandwidth(2.5 * GiB) == "2.50GiB/s"

    def test_format_small(self):
        assert format_bandwidth(100.0) == "100B/s"

    def test_format_zero_rejected(self):
        with pytest.raises(ConfigError):
            format_bandwidth(0)
