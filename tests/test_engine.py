"""ScoreEngine end-to-end semantics (single process)."""

import pytest

from repro.core.engine import ScoreEngine
from repro.core.lifecycle import CkptState
from repro.errors import (
    CheckpointNotFound,
    EngineClosedError,
    IntegrityError,
    LifecycleError,
)
from repro.tiers.base import TierLevel
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB  # 4 fit the tiny GPU cache, 16 the host cache


class TestCheckpoint:
    def test_checkpoint_lands_in_gpu_cache(self, engine, context):
        buf = make_buffer(context, CKPT, seed=1)
        blocked = engine.checkpoint(0, buf)
        assert blocked > 0.0
        record = engine.catalog.get(0)
        inst = record.peek(TierLevel.GPU)
        assert inst is not None and inst.has_copy

    def test_duplicate_id_rejected(self, engine, context):
        buf = make_buffer(context, CKPT)
        engine.checkpoint(0, buf)
        with pytest.raises(LifecycleError):
            engine.checkpoint(0, buf)

    def test_flush_cascade_reaches_ssd(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        assert engine.ssd.contains(engine.store_key(engine.catalog.get(0)))
        record = engine.catalog.get(0)
        assert record.durable_level == TierLevel.SSD
        assert record.peek(TierLevel.GPU).state is CkptState.FLUSHED
        assert record.peek(TierLevel.HOST).state is CkptState.FLUSHED

    def test_history_exceeding_caches_spills(self, engine, context):
        # 24 x 128 MiB = 3 GiB > 512 MiB GPU + 2 GiB host
        for v in range(24):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        assert engine.ssd.object_count() == 24
        assert engine.gpu_cache.evictions > 0
        assert engine.host_cache.evictions > 0

    def test_recover_size_returns_true_size(self, engine, context):
        buf = make_buffer(context, CKPT)
        engine.checkpoint(0, buf)
        assert engine.recover_size(0) == CKPT


class TestRestore:
    def test_restore_verifies_payload(self, engine, context):
        buf = make_buffer(context, CKPT, seed=7)
        expected = buf.checksum()
        engine.checkpoint(0, buf)
        out = context.device.alloc_buffer(CKPT)
        engine.restore(0, out)
        assert out.checksum() == expected

    def test_restore_unknown_raises(self, engine, context):
        with pytest.raises(CheckpointNotFound):
            engine.restore(42, make_buffer(context, CKPT))

    def test_restore_twice_rejected(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        out = context.device.alloc_buffer(CKPT)
        engine.restore(0, out)
        with pytest.raises(LifecycleError):
            engine.restore(0, out)

    def test_restore_from_ssd_after_eviction(self, engine, context):
        sums = {}
        for v in range(24):
            buf = make_buffer(context, CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes()
        out = context.device.alloc_buffer(CKPT)
        engine.restore(0, out)  # long evicted from both caches
        assert out.checksum() == sums[0]
        restores = engine.recorder.restores()
        assert restores[0].source_level in ("SSD", "HOST")

    def test_restore_prefers_ssd_copy_over_pfs(self, context):
        # The PFS flush leg copies the object deeper but leaves the SSD
        # copy in place; reads must keep coming off the fast local drive
        # even though durable_level advanced to PFS.
        with ScoreEngine(context, flush_to_pfs=True) as engine:
            sums = {}
            for v in range(24):
                buf = make_buffer(context, CKPT, seed=v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
            engine.wait_for_flushes()
            record = engine.catalog.get(0)
            assert record.durable_level == TierLevel.PFS
            assert engine.durable_read_source(record) == (TierLevel.SSD, engine.ssd)
            pfs_reads = engine.telemetry.registry.counter("tier.pfs.read_ops")
            before = pfs_reads.value
            out = context.device.alloc_buffer(CKPT)
            engine.restore(0, out)  # long evicted from both caches
            assert out.checksum() == sums[0]
            assert pfs_reads.value == before  # served by the SSD, not the PFS
            assert engine.recorder.restores()[0].source_level == "SSD"

    def test_restore_falls_back_to_pfs_when_ssd_copy_gone(self, context):
        with ScoreEngine(context, flush_to_pfs=True) as engine:
            buf = make_buffer(context, CKPT, seed=3)
            engine.checkpoint(0, buf)
            engine.wait_for_flushes()
            record = engine.catalog.get(0)
            engine.gpu_cache.evict(record)
            engine.host_cache.evict(record)
            engine.ssd.delete(engine.store_key(record))  # simulate drive loss
            assert engine.durable_read_source(record) == (TierLevel.PFS, engine.pfs)
            out = context.device.alloc_buffer(CKPT)
            engine.restore(0, out)
            assert out.checksum() == buf.checksum()

    def test_restore_detects_corruption(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT, seed=1))
        engine.wait_for_flushes()
        # Corrupt the SSD copy, then force the restore to read it.
        record = engine.catalog.get(0)
        engine.gpu_cache.evict(record)
        engine.host_cache.evict(record)
        payload, _ = engine.ssd.get(engine.store_key(record))
        payload = payload.copy()  # get() returns a read-only view
        payload[0] ^= 0xFF
        engine.ssd.put(engine.store_key(record), payload, record.nominal_size)
        with pytest.raises(IntegrityError):
            engine.restore(0, context.device.alloc_buffer(CKPT))

    def test_restore_marks_all_instances_consumed(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        engine.restore(0, context.device.alloc_buffer(CKPT))
        record = engine.catalog.get(0)
        assert record.consumed
        for inst in record.instances.values():
            assert inst.state is CkptState.CONSUMED


class TestHints:
    def test_prefetch_stages_upcoming(self, engine, context):
        for v in range(24):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        for v in range(24):
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        for v in range(24):
            # compute interval between restores: the prefetcher works in
            # these gaps (demand-priority pauses it during restores).
            engine.clock.sleep(0.3)
            engine.restore(v, out)
        assert engine.prefetcher.promotions > 0
        # at least some restores should hit a prefetched GPU extent
        sources = [e.source_level for e in engine.recorder.restores()]
        assert "GPU" in sources

    def test_duplicate_hint_rejected(self, engine):
        engine.prefetch_enqueue(1)
        with pytest.raises(Exception):
            engine.prefetch_enqueue(1)

    def test_deviation_from_hints_tolerated(self, engine, context):
        for v in range(6):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        for v in range(6):
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        # restore in a different order than hinted
        for v in (5, 0, 3, 1, 4, 2):
            engine.restore(v, out)

    def test_prefetch_distance_recorded(self, engine, context):
        for v in range(8):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        for v in range(8):
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        for v in range(8):
            engine.restore(v, out)
        distances = [e.prefetch_distance for e in engine.recorder.restores()]
        assert all(d is not None for d in distances)


class TestDiscard:
    def test_discard_consumed_cancels_flushes(self, context):
        eng = ScoreEngine(context, discard_consumed=True)
        try:
            eng.checkpoint(0, make_buffer(context, CKPT))
            out = context.device.alloc_buffer(CKPT)
            eng.restore(0, out)  # consumed before flushes complete
            record = eng.catalog.get(0)
            assert record.discarded
            assert record.cancel_flush.is_set()
            eng.wait_for_flushes()
        finally:
            eng.close()


class TestLifecycleManagement:
    def test_close_idempotent(self, context):
        eng = ScoreEngine(context)
        eng.close()
        eng.close()

    def test_operations_after_close_rejected(self, context):
        eng = ScoreEngine(context)
        eng.close()
        with pytest.raises(EngineClosedError):
            eng.checkpoint(0, make_buffer(context, CKPT))
        with pytest.raises(EngineClosedError):
            eng.prefetch_enqueue(0)

    def test_stats_shape(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        stats = engine.stats()
        for key in ("checkpoints", "gpu_occupancy", "promotions", "ssd_objects"):
            assert key in stats

    def test_context_manager(self, context):
        with ScoreEngine(context) as eng:
            eng.checkpoint(0, make_buffer(context, CKPT))
