"""Checkpoint records and the catalog."""

import pytest

from repro.core.catalog import Catalog, CheckpointRecord
from repro.core.lifecycle import CkptState
from repro.errors import CheckpointNotFound, LifecycleError
from repro.tiers.base import TierLevel


def make_record(ckpt_id=1):
    return CheckpointRecord(ckpt_id, nominal_size=1024, true_size=1000, checksum=0xAB)


class TestRecord:
    def test_instance_created_on_demand(self):
        r = make_record()
        inst = r.instance(TierLevel.GPU)
        assert inst.state is CkptState.INIT
        assert r.instance(TierLevel.GPU) is inst

    def test_peek_returns_none_when_absent(self):
        assert make_record().peek(TierLevel.GPU) is None

    def test_drop_instance(self):
        r = make_record()
        r.instance(TierLevel.GPU)
        r.drop_instance(TierLevel.GPU)
        assert r.peek(TierLevel.GPU) is None

    def test_drop_missing_raises(self):
        with pytest.raises(LifecycleError):
            make_record().drop_instance(TierLevel.HOST)

    def test_cached_copy_levels_fastest_first(self):
        r = make_record()
        host = r.instance(TierLevel.HOST)
        host.transition(CkptState.WRITE_IN_PROGRESS)
        host.transition(CkptState.WRITE_COMPLETE)
        gpu = r.instance(TierLevel.GPU)
        gpu.transition(CkptState.READ_IN_PROGRESS)
        # GPU extent incomplete: only host counts.
        assert list(r.cached_copy_levels()) == [TierLevel.HOST]
        gpu.transition(CkptState.READ_COMPLETE)
        assert list(r.cached_copy_levels()) == [TierLevel.GPU, TierLevel.HOST]
        assert r.fastest_cached_level() == TierLevel.GPU

    def test_has_copy_besides_uses_durable(self):
        r = make_record()
        gpu = r.instance(TierLevel.GPU)
        gpu.transition(CkptState.WRITE_IN_PROGRESS)
        gpu.transition(CkptState.WRITE_COMPLETE)
        assert not r.has_copy_besides(TierLevel.GPU)
        r.durable_level = TierLevel.SSD
        assert r.has_copy_besides(TierLevel.GPU)
        # the GPU cached copy counts as "besides SSD"
        assert r.has_copy_besides(TierLevel.SSD)
        assert r.fastest_cached_level() is TierLevel.GPU

    def test_has_copy_besides_other_cache(self):
        r = make_record()
        for level in (TierLevel.GPU, TierLevel.HOST):
            inst = r.instance(level)
            inst.transition(CkptState.WRITE_IN_PROGRESS)
            inst.transition(CkptState.WRITE_COMPLETE)
        assert r.has_copy_besides(TierLevel.GPU)
        assert r.has_copy_besides(TierLevel.HOST)


class TestCatalog:
    def test_create_and_get(self):
        cat = Catalog()
        r = cat.create(1, 1024, 1000, 0xAB)
        assert cat.get(1) is r
        assert cat.contains(1)
        assert len(cat) == 1

    def test_duplicate_create_rejected(self):
        cat = Catalog()
        cat.create(1, 1024, 1000, 0xAB)
        with pytest.raises(LifecycleError):
            cat.create(1, 2048, 2000, 0xCD)

    def test_get_unknown_raises(self):
        with pytest.raises(CheckpointNotFound):
            Catalog().get(42)

    def test_maybe_get(self):
        cat = Catalog()
        assert cat.maybe_get(1) is None
        r = cat.create(1, 1024, 1000, 0)
        assert cat.maybe_get(1) is r

    def test_forget(self):
        cat = Catalog()
        cat.create(1, 1024, 1000, 0)
        cat.forget(1)
        assert not cat.contains(1)
        cat.forget(1)  # idempotent

    def test_all_records(self):
        cat = Catalog()
        cat.create(1, 1024, 1000, 0)
        cat.create(2, 1024, 1000, 0)
        assert {r.ckpt_id for r in cat.all_records()} == {1, 2}
