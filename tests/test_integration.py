"""Cross-module integration scenarios."""

import pytest

from repro.core.client import Client
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import GiB, MiB
from repro.workloads.multiproc import run_multiprocess_shot
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import variable_trace
from repro.workloads.shot import HintMode, ShotSpec
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB


class TestDataIntegrityUnderPressure:
    """Every byte of every checkpoint survives heavy eviction churn."""

    @pytest.mark.parametrize("policy", ["score", "lru", "fifo"])
    def test_eviction_policies_preserve_data(self, policy):
        cfg = tiny_config(eviction_policy=policy)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                sums = {}
                for v in range(20):  # 2.5 GiB through 0.5+2 GiB caches
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                engine.wait_for_flushes()
                out = ctx.device.alloc_buffer(CKPT)
                for v in restore_order(RestoreOrder.IRREGULAR, 20, seed=2):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v], f"corruption at version {v}"

    def test_variable_sizes_with_fragmentation(self):
        cfg = tiny_config()
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            trace = variable_trace(
                cfg.scale, rank=0, seed=5, num_snapshots=16, total_bytes=16 * CKPT
            )
            with ScoreEngine(ctx) as engine:
                sums = {}
                for v, size in enumerate(trace.sizes):
                    buf = ctx.device.alloc_buffer(size)
                    buf.fill_random(make_rng(v, "frag"))
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                engine.wait_for_flushes()
                for v in restore_order(RestoreOrder.IRREGULAR, 16, seed=9):
                    out = ctx.device.alloc_buffer(engine.scale.align(engine.recover_size(v)))
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]


class TestSplitCacheAblation:
    def test_split_cache_runs_and_partitions(self):
        cfg = tiny_config(shared_cache=False)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                assert engine.gpu_cache.write_boundary is not None
                sums = {}
                for v in range(8):
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                engine.wait_for_flushes()
                for v in range(8):
                    engine.prefetch_enqueue(v)
                engine.prefetch_start()
                out = ctx.device.alloc_buffer(CKPT)
                for v in range(8):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]


class TestMultiNode:
    def test_two_nodes_separate_ssds(self):
        cfg = tiny_config(num_nodes=2, processes_per_node=1)
        with Cluster(cfg) as cluster:
            ctxs = cluster.process_contexts()
            engines = [ScoreEngine(ctx) for ctx in ctxs]
            try:
                for engine, ctx in zip(engines, ctxs):
                    engine.checkpoint(0, make_buffer(ctx, CKPT, seed=engine.process_id))
                    engine.wait_for_flushes()
                assert engines[0].ssd is not engines[1].ssd
                assert engines[0].ssd.object_count() == 1
                assert engines[1].ssd.object_count() == 1
            finally:
                for engine in engines:
                    engine.close()

    def test_multi_node_shot(self):
        cfg = tiny_config(num_nodes=2, processes_per_node=2)
        with Cluster(cfg) as cluster:
            n = 6
            specs = []
            for rank in range(4):
                trace = variable_trace(
                    cfg.scale, rank=rank, seed=3, num_snapshots=n, total_bytes=n * CKPT
                )
                specs.append(
                    ShotSpec(
                        trace=trace,
                        restore_order=restore_order(RestoreOrder.REVERSE, n),
                        hint_mode=HintMode.SINGLE,
                        compute_interval=0.005,
                    )
                )
            results = run_multiprocess_shot(cluster, lambda ctx: ScoreEngine(ctx), specs)
            assert len(results) == 4
            assert {r.process_id for r in results} == {0, 1, 8, 9}


class TestBinomialStyleInterleaving:
    """Interleaved write/read with incremental hints (binomial adjoints)."""

    def test_interleaved_hints_and_ops(self):
        cfg = tiny_config()
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with Client.create(ctx) as client:
                buf = ctx.device.alloc_buffer(CKPT)
                client.mem_protect(1, buf)
                client.prefetch_start()
                version = 0
                live = []
                sums = {}
                rng = make_rng(11, "binomial")
                for _round in range(4):
                    # small forward burst
                    for _ in range(3):
                        buf.fill_random(rng)
                        sums[version] = buf.checksum()
                        client.checkpoint("seg", version)
                        live.append(version)
                        version += 1
                    # consume the burst in reverse, hinting one ahead
                    for v in reversed(live):
                        client.prefetch_enqueue(v)
                    for v in reversed(live):
                        client.restart(v)
                        assert buf.checksum() == sums[v]
                    live.clear()


class TestPfsPersistence:
    def test_full_cascade_to_pfs(self):
        cfg = tiny_config()
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                for v in range(4):
                    engine.checkpoint(v, make_buffer(ctx, CKPT, seed=v))
                engine.wait_for_flushes()
                assert cluster.pfs.object_count() == 4
