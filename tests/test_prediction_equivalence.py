"""``PredictConfig.enabled=False`` changes nothing — same discipline as
``ClusterConfig`` / ``SchedConfig`` / ``FaultConfig`` / ``ReduceConfig``.

The prediction plumbing (the ``SyntheticRestoreQueue`` subclass, the
``queue.hint_index()`` indirection in the cache cost memo, the predict
hooks on checkpoint/restore/evict, the ``explicit`` task flag in the
prefetcher) must be invisible when the switch is off: no runtime object
is built, the plain ``RestoreQueue`` is used, no predict counter moves —
and the same deterministic scenario produces identical eviction
decisions, cache layouts, tier byte counters and restored bytes whether
the config is the default or has every *other* predict knob set to a
non-default value with ``enabled=False``.

The hypothesis property closes the loop from the other side: with
prediction *on* (learned mode, no hints) every restored payload is still
bit-identical to what hint mode restores — speculation may change where
bytes are staged, never what a restore returns.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, PredictConfig
from repro.core.engine import ScoreEngine
from repro.core.restore_queue import RestoreQueue
from repro.predict import SyntheticRestoreQueue
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.kvcache import (
    KvCacheSpec,
    generate_kvcache_schedule,
    run_kvcache,
)
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import tiny_config

CKPT = 128 * MiB
VERSIONS = 12


def _run_scenario(predict_cfg):
    cfg = tiny_config(telemetry=True)
    if predict_cfg is not None:
        cfg = cfg.with_(predict=predict_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            # The gates under test: nothing built, the plain queue in place.
            assert engine.predict is None
            assert type(engine.queue) is RestoreQueue
            assert not isinstance(engine.queue, SyntheticRestoreQueue)
            sums = {}
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(CKPT)
                buf.fill_random(make_rng(v, "predict-equiv"))
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, VERSIONS, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            events = cluster.telemetry.bus.snapshot()
            assert not any(ev.name.startswith("spec-") for ev in events)
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in events
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            predict_counters = {
                name: registry.counter(name).value
                for name in (
                    "predict.refreshes",
                    "predict.spec_hits",
                    "predict.spec_wastes",
                    "predict.spec_prefetches",
                    "predict.suspensions",
                )
            }
            assert all(v == 0 for v in predict_counters.values())
            return decisions, layouts, tier_bytes, restored


def test_disabled_prediction_is_bit_identical():
    default = _run_scenario(None)
    # Every non-default knob set; enabled=False must make them all inert.
    off = _run_scenario(
        PredictConfig(
            enabled=False,
            predictor="markov",
            history_capacity=16,
            max_queue=2,
            min_confidence=0.9,
            refresh_interval_s=1.5,
            validation=False,
            hit_floor=0.9,
            min_samples=1,
            suspend_s=99.0,
            ewma_alpha=0.99,
        )
    )
    assert json.dumps(default, default=str) == json.dumps(off, default=str)


# -- learned == hints on payload bytes (fault-free schedules) -----------------
def _kv_run(spec, mode):
    changes = {"telemetry": True}
    if mode == "learned":
        changes["predict"] = PredictConfig(enabled=True)
    cfg = tiny_config(**changes).with_(
        cache=CacheConfig(
            gpu_cache_size=2 * 128 * MiB, host_cache_size=4 * 128 * MiB
        )
    )
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx) as engine:
            return run_kvcache(engine, spec, hints=(mode == "hints"))


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    sessions=st.sampled_from([4, 6, 8]),
    adversarial=st.booleans(),
)
def test_learned_restores_bit_identical_to_hint_mode(seed, sessions, adversarial):
    spec = KvCacheSpec(
        sessions=sessions,
        events=4 * sessions,
        base_period_s=0.2,
        think_s=0.001,
        adversarial=adversarial,
        seed=seed,
    )
    hint = _kv_run(spec, "hints")
    learned = _kv_run(spec, "learned")
    # run_kvcache checksum-verifies every restore against the exact bytes
    # the session suspended: "verified == restores" in *both* modes means
    # every payload came back bit-identical, speculation or not.  The
    # count comes from the schedule: an adversarial trace picks sessions
    # uniformly at random, so a session may never activate at all.
    schedule = generate_kvcache_schedule(spec)
    restores = sum(1 for ev in schedule if ev.restore_id is not None)
    assert len(hint.restore_latencies) == restores
    assert len(learned.restore_latencies) == restores
    assert hint.verified == restores
    assert learned.verified == restores
    assert hint.abandoned == learned.abandoned
