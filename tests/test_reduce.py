"""Unit tests for the data-reduction pipeline (chunking, stores, codec,
encode/reconstruct, delta chains, report rendering)."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import ReduceConfig, ScaleModel
from repro.core.catalog import CheckpointRecord
from repro.errors import ConfigError, IntegrityError
from repro.reduce import (
    ChunkAccountingError,
    ChunkRegistry,
    ChunkStore,
    Reducer,
    chunk_payload,
    get_codec,
    known_codecs,
    render_reduce_report,
)
from repro.reduce.chunking import cdc_spans, fixed_spans
from repro.tiers.base import TierLevel
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, time_scale=0.0005, alignment=64 * KiB)
#: 256 KiB nominal chunks = 4 payload bytes at this scale.
CFG = ReduceConfig(
    enabled=True,
    chunk_size=256 * KiB,
    min_chunk_size=64 * KiB,
    max_chunk_size=1 * MiB,
    max_delta_chain=2,
)


def make_reducer(cfg=CFG, **kwargs) -> Reducer:
    return Reducer(cfg, SCALE, VirtualClock(time_scale=0.0005), **kwargs)


def make_record(ckpt_id: int, nominal: int) -> CheckpointRecord:
    return CheckpointRecord(ckpt_id, SCALE.align(nominal), nominal, 0)


def payload_of(nominal: int, fill=None, rng=None) -> np.ndarray:
    size = SCALE.payload_bytes(SCALE.align(nominal))
    if rng is not None:
        return rng.integers(0, 256, size=size, dtype=np.uint8)
    return np.full(size, 0 if fill is None else fill, dtype=np.uint8)


class TestConfig:
    def test_defaults_disabled(self):
        assert ReduceConfig().enabled is False

    @pytest.mark.parametrize(
        "changes",
        [
            {"site": "ssd"},
            {"chunking": "rabin"},
            {"codec": "brotli"},
            {"chunk_size": 0},
            {"min_chunk_size": 16 * MiB},  # min > avg
            {"max_chunk_size": 4 * MiB},  # max < avg
            {"delta_threshold": 0.0},
            {"delta_threshold": 1.5},
            {"max_delta_chain": -1},
            {"chain_penalty": -0.1},
            {"recipe_overhead": -1},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ConfigError):
            ReduceConfig(**changes)


class TestChunking:
    def test_fixed_spans_cover_exactly(self):
        payload = payload_of(10 * 256 * KiB + 64 * KiB)
        spans = fixed_spans(int(payload.size), CFG, SCALE)
        assert spans[0].offset == 0
        assert all(
            a.offset + a.length == b.offset for a, b in zip(spans, spans[1:])
        )
        assert sum(s.length for s in spans) == payload.size
        assert sum(s.nominal_size for s in spans) == payload.size * SCALE.data_scale

    def test_cdc_spans_respect_bounds_and_cover(self):
        rng = np.random.default_rng(3)
        cfg = ReduceConfig(
            enabled=True,
            chunking="cdc",
            chunk_size=256 * KiB,
            min_chunk_size=128 * KiB,
            max_chunk_size=512 * KiB,
        )
        payload = payload_of(16 * MiB, rng=rng)
        spans = cdc_spans(payload, cfg, SCALE)
        assert sum(s.length for s in spans) == payload.size
        min_len = (128 * KiB) // SCALE.data_scale
        max_len = (512 * KiB) // SCALE.data_scale
        for span in spans[:-1]:  # the tail may be short
            assert min_len <= span.length <= max_len

    def test_cdc_is_deterministic(self):
        rng = np.random.default_rng(5)
        cfg = ReduceConfig(enabled=True, chunking="cdc")
        payload = payload_of(64 * MiB, rng=rng)
        assert cdc_spans(payload, cfg, SCALE) == cdc_spans(payload.copy(), cfg, SCALE)

    def test_dispatch(self):
        payload = payload_of(1 * MiB)
        assert chunk_payload(payload, CFG, SCALE) == fixed_spans(
            int(payload.size), CFG, SCALE
        )


class TestCodec:
    def test_known_codecs(self):
        assert {"none", "lz", "zstd"} <= set(known_codecs())

    def test_bandwidth_sides(self):
        lz = get_codec("lz")
        assert lz.encode_bandwidth("gpu") > lz.encode_bandwidth("host")
        assert lz.ratio < get_codec("none").ratio

    def test_unknown_codec(self):
        with pytest.raises(ConfigError):
            get_codec("snappy")


class TestChunkStore:
    def test_refcounting(self):
        store = ChunkStore(TierLevel.HOST)
        assert store.add(b"a", 100) is True
        assert store.add(b"a", 100) is False
        assert store.held_bytes == 100
        assert store.release(b"a") is False
        assert store.release(b"a") is True
        assert store.held_bytes == 0
        store.check()

    def test_release_without_put_raises(self):
        store = ChunkStore(TierLevel.SSD)
        with pytest.raises(ChunkAccountingError):
            store.release(b"missing")

    def test_registry_orphans_and_liveness(self):
        reg = ChunkRegistry()
        reg.add(b"x", 10)
        assert reg.is_live(b"x")
        assert not list(reg.orphans())
        reg.release(b"x")
        assert not reg.is_live(b"x")
        with pytest.raises(ChunkAccountingError):
            reg.release(b"x")


class TestEncode:
    def test_identical_payload_dedups_fully(self):
        reducer = make_reducer()
        rng = np.random.default_rng(7)
        payload = payload_of(8 * 256 * KiB, rng=rng)
        r1, r2 = make_record(0, 8 * 256 * KiB), make_record(1, 8 * 256 * KiB)
        reducer.encode(r1, payload)
        reducer.attach(r1, TierLevel.GPU)  # chunks become live
        reducer.encode(r2, payload.copy())
        assert r2.reduction.dup_chunks == len(r2.reduction.chunks)
        assert r2.physical_size < r1.physical_size
        assert r2.physical_size <= SCALE.align(
            CFG.recipe_overhead * len(r2.reduction.chunks)
        )

    def test_small_in_chunk_change_becomes_delta(self):
        reducer = make_reducer()
        # Distinct per-chunk contents (4 payload bytes per 256 KiB chunk).
        payload = np.repeat(np.arange(8, dtype=np.uint8), 4)
        r1, r2 = make_record(0, 8 * 256 * KiB), make_record(1, 8 * 256 * KiB)
        reducer.encode(r1, payload)
        reducer.attach(r1, TierLevel.GPU)
        second = payload.copy()
        second[0] ^= 0xFF  # one payload byte = 64 KiB nominal < 0.6 * 256 KiB
        reducer.encode(r2, second)
        image = r2.reduction
        assert image.delta_chunks == 1
        assert image.dup_chunks == 7  # unchanged chunks dedup via the registry
        assert image.depth == 1
        assert image.base_ckpt == 0
        assert image.new_chunks == 0

    def test_chain_depth_bounded_by_rebase(self):
        reducer = make_reducer()  # max_delta_chain=2
        prev = payload_of(8 * 256 * KiB, fill=1)
        depths = []
        for v in range(6):
            record = make_record(v, 8 * 256 * KiB)
            reducer.encode(record, prev)
            depths.append(record.reduction.depth)
            prev = prev.copy()
            prev[v * 4] ^= 0xFF  # one byte per version, distinct chunks
        assert max(depths) <= CFG.max_delta_chain
        assert reducer.rebases >= 1
        assert depths[0] == 0 and depths[1] == 1

    def test_physical_never_exceeds_nominal(self):
        reducer = make_reducer(cfg=ReduceConfig(enabled=True, codec="none"))
        rng = np.random.default_rng(11)
        record = make_record(0, 128 * MiB)
        reducer.encode(record, payload_of(128 * MiB, rng=rng))
        assert record.physical_size <= record.nominal_size
        assert record.stored_size(TierLevel.PFS) == record.physical_size
        assert record.stored_size(TierLevel.GPU) == record.physical_size  # site=gpu

    def test_stored_size_above_site_is_logical(self):
        reducer = make_reducer(
            cfg=ReduceConfig(enabled=True, site="host", chunk_size=256 * KiB,
                             min_chunk_size=64 * KiB, max_chunk_size=1 * MiB)
        )
        record = make_record(0, 1 * MiB)
        reducer.encode(record, payload_of(1 * MiB, fill=9))
        assert record.stored_size(TierLevel.GPU) == record.nominal_size
        assert record.stored_size(TierLevel.HOST) == record.physical_size
        assert record.wire_size(TierLevel.GPU, TierLevel.HOST) == record.nominal_size
        assert record.wire_size(TierLevel.HOST, TierLevel.SSD) == record.physical_size


class TestReconstruct:
    def test_roundtrip_bytes_identical(self):
        reducer = make_reducer()
        rng = np.random.default_rng(13)
        payload = payload_of(2 * MiB, rng=rng)
        record = make_record(0, 2 * MiB)
        reducer.encode(record, payload)
        reducer.attach(record, TierLevel.GPU)
        out, seconds = reducer.reconstruct(record, TierLevel.GPU)
        assert np.array_equal(out, payload)
        assert seconds > 0

    def test_unreduced_record_raises(self):
        reducer = make_reducer()
        with pytest.raises(IntegrityError):
            reducer.reconstruct(make_record(0, 1 * MiB), TierLevel.GPU)

    def test_decode_charge_grows_with_depth(self):
        reducer = make_reducer()
        base = payload_of(8 * 256 * KiB, fill=3)
        r1, r2 = make_record(0, 8 * 256 * KiB), make_record(1, 8 * 256 * KiB)
        reducer.encode(r1, base)
        second = base.copy()
        second[0] ^= 0xFF
        reducer.encode(r2, second)
        _, t_base = reducer.reconstruct(r1, TierLevel.GPU)
        _, t_delta = reducer.reconstruct(r2, TierLevel.GPU)
        assert t_delta > t_base  # chain penalty


class TestAttachDetach:
    def test_attach_is_idempotent_and_detach_inverse(self):
        reducer = make_reducer()
        record = make_record(0, 4 * 256 * KiB)
        reducer.encode(record, payload_of(4 * 256 * KiB, fill=5))
        reducer.attach(record, TierLevel.HOST)
        reducer.attach(record, TierLevel.HOST)  # no double count
        store = reducer.stores[TierLevel.HOST]
        assert sum(store.refs.values()) == len(record.reduction.chunks)
        reducer.detach(record, TierLevel.HOST)
        reducer.detach(record, TierLevel.HOST)  # no-op
        assert not store.refs
        assert not reducer.registry.total_refs

    def test_shared_chunks_survive_one_release(self):
        reducer = make_reducer()
        payload = payload_of(4 * 256 * KiB, fill=8)
        r1, r2 = make_record(0, 4 * 256 * KiB), make_record(1, 4 * 256 * KiB)
        reducer.encode(r1, payload)
        reducer.attach(r1, TierLevel.SSD)
        reducer.encode(r2, payload.copy())
        reducer.attach(r2, TierLevel.SSD)
        reducer.detach(r1, TierLevel.SSD)
        store = reducer.stores[TierLevel.SSD]
        for chunk in r2.reduction.chunks:
            assert store.contains(chunk.digest)
        reducer.detach(r2, TierLevel.SSD)
        assert store.held_bytes == 0


class TestReport:
    def test_report_renders_totals(self):
        from repro.telemetry import Telemetry

        clock = VirtualClock(time_scale=0.0005)
        telemetry = Telemetry(clock, enabled=True)
        reducer = make_reducer(telemetry=telemetry, process_id=3)
        payload = payload_of(8 * 256 * KiB, fill=2)
        for v in range(3):
            record = make_record(v, 8 * 256 * KiB)
            reducer.encode(record, payload)
            reducer.attach(record, TierLevel.GPU)
        from repro.reduce import reduce_events

        report = render_reduce_report(reduce_events(telemetry.bus.snapshot()))
        assert "p3-reduce" in report
        assert "dedup hit rate" in report
        assert "saved" in report

    def test_report_empty(self):
        assert "no reduction events" in render_reduce_report([])
