"""Link (shared bandwidth) behaviour."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.errors import ConfigError, TransferError
from repro.simgpu.bandwidth import Link
from repro.util.units import MiB


@pytest.fixture
def clock():
    return VirtualClock(time_scale=0.001)


def test_transfer_duration_accounted(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.0)
    seconds = link.transfer(50 * MiB)
    assert seconds == pytest.approx(0.5, rel=0.05)


def test_latency_added_once(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.25)
    seconds = link.transfer(25 * MiB)
    assert seconds == pytest.approx(0.5, rel=0.05)


def test_zero_bytes_costs_latency_only(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.1)
    assert link.transfer(0) == pytest.approx(0.1, rel=0.2)


def test_negative_bytes_rejected(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock)
    with pytest.raises(ValueError):
        link.transfer(-1)


def test_stats_accumulate(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock)
    link.transfer(10 * MiB)
    link.transfer(20 * MiB)
    assert link.bytes_moved == 30 * MiB
    assert link.transfer_count == 2
    assert link.busy_time == pytest.approx(0.3, rel=0.05)
    assert link.pending_bytes == 0


def test_estimate_includes_backlog(clock):
    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.0)
    base = link.estimate(100 * MiB)
    assert base == pytest.approx(1.0)
    with link._stats_lock:
        link._pending_bytes += 100 * MiB
    assert link.estimate(100 * MiB) == pytest.approx(2.0)
    assert link.estimate(100 * MiB, include_pending=False) == pytest.approx(1.0)


def test_contention_halves_throughput():
    clock = VirtualClock(time_scale=0.01)
    link = Link("t", bandwidth=100 * MiB, clock=clock, chunk_size=1 * MiB)
    barrier = threading.Barrier(2)
    results = []

    def worker():
        barrier.wait()
        # 10 s virtual = 100 ms wall: long enough that OS scheduling jitter
        # cannot accidentally serialize the two transfers.
        results.append(link.transfer(1000 * MiB))

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Two concurrent 10 s transfers share the link: fairness of the split
    # depends on lock scheduling, but whoever loses pays for the winner's
    # chunks — at least one transfer must observe clear slowdown, and
    # neither can beat its solo time.
    assert max(results) > 13.0
    for seconds in results:
        assert seconds >= 9.5


def test_cancellation_raises_and_releases_pending(clock):
    link = Link("t", bandwidth=1 * MiB, clock=clock, chunk_size=64 * 1024)
    cancelled = threading.Event()
    cancelled.set()
    with pytest.raises(TransferError):
        link.transfer(10 * MiB, cancelled=cancelled)
    assert link.pending_bytes == 0


def test_zero_progress_cancellation_before_any_accounting(clock):
    """An already-cancelled transfer aborts before *any* progress: no
    latency is paid, no pending bytes are announced, no transfer counted —
    even for zero-byte transfers (regression: the old check lived inside
    the chunk loop, so it only fired once chunks remained)."""
    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.5)
    cancelled = threading.Event()
    cancelled.set()
    before = clock.now()
    with pytest.raises(TransferError):
        link.transfer(0, cancelled=cancelled)
    with pytest.raises(TransferError):
        link.transfer(10 * MiB, cancelled=cancelled)
    assert link.pending_bytes == 0
    assert link.transfer_count == 0  # never admitted
    assert link.bytes_moved == 0
    # The 0.5 s submission latency was never slept.
    assert clock.now() - before < 0.25


def test_request_cancel_event_aborts_with_zero_progress(clock):
    """A request's cancellation event doubles as the ``cancelled`` channel
    and honours the same zero-progress abort."""
    from repro.sched.request import TransferClass, TransferRequest

    link = Link("t", bandwidth=100 * MiB, clock=clock, latency=0.5)
    request = TransferRequest(TransferClass.SPECULATIVE_PREFETCH)
    request.cancel_event.set()
    with pytest.raises(TransferError):
        link.transfer(10 * MiB, request=request)
    assert link.transfer_count == 0
    assert link.pending_bytes == 0


def test_mid_transfer_cancellation():
    clock = VirtualClock(time_scale=0.01)
    link = Link("t", bandwidth=10 * MiB, clock=clock, chunk_size=1 * MiB)
    cancelled = threading.Event()
    errors = []
    started = threading.Event()

    def worker():
        started.set()
        try:
            link.transfer(1000 * MiB, cancelled=cancelled)  # 100 s virtual
        except TransferError as exc:
            errors.append(exc)

    t = threading.Thread(target=worker)
    t.start()
    started.wait(timeout=5)
    clock.sleep(1.0)
    cancelled.set()
    t.join(timeout=10)
    assert errors, "transfer should have been cancelled"
    assert link.pending_bytes == 0


def test_invalid_construction():
    clock = VirtualClock(0.001)
    with pytest.raises(ConfigError):
        Link("t", bandwidth=0, clock=clock)
    with pytest.raises(ConfigError):
        Link("t", bandwidth=1, clock=clock, latency=-1)
    with pytest.raises(ConfigError):
        Link("t", bandwidth=1, clock=clock, chunk_size=0)


def test_serialized_link_whole_object():
    """chunk_size larger than any transfer serializes whole objects."""
    clock = VirtualClock(time_scale=0.01)
    link = Link("ssd", bandwidth=100 * MiB, clock=clock, chunk_size=1 << 62)
    barrier = threading.Barrier(3)
    durations = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        seconds = link.transfer(100 * MiB)
        with lock:
            durations.append(seconds)

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    durations.sort()
    # Serialized completions stream out: ~1 s, ~2 s, ~3 s.
    assert durations[0] == pytest.approx(1.0, rel=0.4)
    assert durations[-1] == pytest.approx(3.0, rel=0.4)
