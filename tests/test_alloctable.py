"""Allocation table: tiling invariants, coalescing, placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alloctable import AllocTable
from repro.core.catalog import CheckpointRecord
from repro.errors import AllocationError, CapacityError


def rec(ckpt_id, size=10):
    return CheckpointRecord(ckpt_id, size, size, 0)


class TestBasicOps:
    def test_starts_as_one_gap(self):
        t = AllocTable(100)
        frags = t.fragments()
        assert len(frags) == 1 and frags[0].is_gap and frags[0].size == 100
        assert t.free_bytes == 100 and t.used_bytes == 0

    def test_insert_splits_gap(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 20)
        sizes = [(f.offset, f.size, f.is_gap) for f in t.fragments()]
        assert sizes == [(0, 20, True), (20, 10, False), (30, 70, True)]
        t.check_invariants()

    def test_insert_at_gap_start(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 0)
        assert [f.is_gap for f in t.fragments()] == [False, True]
        t.check_invariants()

    def test_insert_fills_gap_exactly(self):
        t = AllocTable(10)
        t.insert(rec(1), 10, 0)
        assert len(t.fragments()) == 1
        assert t.free_bytes == 0

    def test_insert_overlap_rejected(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 0)
        with pytest.raises(AllocationError):
            t.insert(rec(2), 10, 5)

    def test_duplicate_ckpt_rejected(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 0)
        with pytest.raises(AllocationError):
            t.insert(rec(1), 10, 50)

    def test_oversized_rejected(self):
        t = AllocTable(100)
        with pytest.raises(CapacityError):
            t.insert(rec(1), 101, 0)

    def test_remove_coalesces_both_sides(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 20)
        assert t.remove(1) == 10
        frags = t.fragments()
        assert len(frags) == 1 and frags[0].is_gap and frags[0].size == 100
        t.check_invariants()

    def test_remove_between_neighbors(self):
        t = AllocTable(30)
        t.insert(rec(1), 10, 0)
        t.insert(rec(2), 10, 10)
        t.insert(rec(3), 10, 20)
        t.remove(2)
        frags = t.fragments()
        assert [f.is_gap for f in frags] == [False, True, False]
        t.check_invariants()

    def test_remove_unknown_raises(self):
        with pytest.raises(AllocationError):
            AllocTable(10).remove(7)

    def test_lookup(self):
        t = AllocTable(100)
        t.insert(rec(5), 10, 30)
        assert t.lookup(5).offset == 30
        assert t.contains(5)
        with pytest.raises(AllocationError):
            t.lookup(6)

    def test_touch_updates_last_access(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 0, now=1.0)
        t.touch(1, 5.0)
        assert t.lookup(1).last_access == 5.0
        assert t.lookup(1).inserted_at == 1.0


class TestFindGap:
    def test_first_fit(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 0)
        t.insert(rec(2), 10, 30)
        # gaps: [10,30) and [40,100)
        assert t.find_gap(15) == 10
        assert t.find_gap(25) == 40
        assert t.find_gap(61) is None

    def test_limit_restricts_end(self):
        t = AllocTable(100)
        assert t.find_gap(10, limit=50) == 0
        assert t.find_gap(60, limit=50) is None

    def test_min_offset_restricts_start(self):
        t = AllocTable(100)
        assert t.find_gap(10, min_offset=40) == 40
        t.insert(rec(1), 30, 40)
        # gap [0,40) + [70,100): placement >= 40 only fits at 70
        assert t.find_gap(10, min_offset=40) == 70
        assert t.find_gap(40, min_offset=40) is None

    def test_min_offset_inside_gap(self):
        t = AllocTable(100)
        # whole arena is one gap; place at the boundary
        assert t.find_gap(60, min_offset=35) == 35

    def test_nonpositive_size_rejected(self):
        with pytest.raises(AllocationError):
            AllocTable(10).find_gap(0)

    def test_largest_gap(self):
        t = AllocTable(100)
        t.insert(rec(1), 10, 20)
        assert t.largest_gap() == 70
        assert t.largest_gap(limit=50) == 20


@st.composite
def table_ops(draw):
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "remove"]), st.integers(1, 30)),
            min_size=1,
            max_size=60,
        )
    )


class TestProperties:
    @given(table_ops())
    @settings(max_examples=120, deadline=None)
    def test_invariants_hold_under_random_ops(self, ops):
        t = AllocTable(200)
        live = {}
        next_id = 0
        for op, size in ops:
            if op == "insert":
                offset = t.find_gap(size)
                if offset is None:
                    continue
                next_id += 1
                t.insert(rec(next_id, size), size, offset)
                live[next_id] = size
            elif live:
                victim = sorted(live)[0]
                assert t.remove(victim) == live.pop(victim)
            t.check_invariants()
            assert t.used_bytes == sum(live.values())

    @given(table_ops())
    @settings(max_examples=60, deadline=None)
    def test_free_bytes_conservation(self, ops):
        t = AllocTable(200)
        live = set()
        next_id = 0
        for op, size in ops:
            if op == "insert":
                offset = t.find_gap(size)
                if offset is None:
                    continue
                next_id += 1
                t.insert(rec(next_id, size), size, offset)
                live.add(next_id)
            elif live:
                t.remove(live.pop())
            assert t.free_bytes + t.used_bytes == 200
            assert t.checkpoint_count() == len(live)
