"""QoS link scheduler: priority, WFQ, EDF, admission, preemption."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.config import SchedConfig
from repro.errors import AdmissionError, ConfigError, TransferError
from repro.sched import (
    PREEMPTIBLE_CLASSES,
    LinkScheduler,
    SchedContext,
    THROTTLED_CLASSES,
    TransferClass,
    TransferRequest,
)
from repro.simgpu.bandwidth import Link
from repro.util.units import MiB


def make_sched(config=None, bandwidth=100 * MiB):
    clock = VirtualClock(time_scale=0.001)
    link = Link("test", bandwidth=bandwidth, clock=clock)
    sched = LinkScheduler(link, config or SchedConfig(enabled=True), clock)
    link.scheduler = sched
    return clock, link, sched


def open_waiting(sched, tclass, engine_id=0, nbytes=1 * MiB, deadline=None):
    """Admit an entry and mark it parked in acquire() (white-box)."""
    entry = sched.open(
        TransferRequest(tclass, engine_id=engine_id, deadline=deadline), nbytes
    )
    entry.waiting = True
    return entry


# -- the lattice ------------------------------------------------------------
def test_transfer_class_lattice():
    order = [
        TransferClass.DEMAND_READ,
        TransferClass.FOREGROUND_WRITE,
        TransferClass.HINTED_PREFETCH,
        TransferClass.CASCADE_FLUSH,
        TransferClass.SPECULATIVE_PREFETCH,
    ]
    assert sorted(order) == order  # lower value = higher priority
    assert PREEMPTIBLE_CLASSES == {TransferClass.SPECULATIVE_PREFETCH}
    assert TransferClass.DEMAND_READ not in THROTTLED_CLASSES
    assert TransferClass.FOREGROUND_WRITE not in THROTTLED_CLASSES
    assert TransferClass.CASCADE_FLUSH in THROTTLED_CLASSES


def test_strict_priority_across_classes():
    # preemption off so the speculative entry survives to be chosen last
    _, _, sched = make_sched(SchedConfig(enabled=True, preempt_speculative=False))
    flush = open_waiting(sched, TransferClass.CASCADE_FLUSH)
    spec = open_waiting(sched, TransferClass.SPECULATIVE_PREFETCH)
    hinted = open_waiting(sched, TransferClass.HINTED_PREFETCH)
    demand = open_waiting(sched, TransferClass.DEMAND_READ)
    # Demand first, then hinted prefetch, then cascade flush, speculation last.
    for expected in (demand, hinted, flush, spec):
        assert sched._choose() is expected
        sched.finish(expected)


def test_wfq_shares_proportional_to_weight():
    config = SchedConfig(
        enabled=True, engine_weights=((0, 3.0), (1, 1.0)), preempt_speculative=False
    )
    _, _, sched = make_sched(config)
    a = open_waiting(sched, TransferClass.CASCADE_FLUSH, engine_id=0)
    b = open_waiting(sched, TransferClass.CASCADE_FLUSH, engine_id=1)
    grants = {0: 0, 1: 0}
    for _ in range(40):
        winner = sched._choose()
        grants[winner.request.engine_id] += 1
        sched._charge(winner, 1 * MiB)
    assert grants[0] == 30  # 3:1 split, exactly, for equal-size quanta
    assert grants[1] == 10


def test_idle_flow_earns_no_credit():
    """A flow that idles must re-enter at the live virtual time, not with
    banked credit that would starve the active flows."""
    _, _, sched = make_sched(SchedConfig(enabled=True))
    a = open_waiting(sched, TransferClass.CASCADE_FLUSH, engine_id=0)
    for _ in range(16):
        sched._charge(a, 1 * MiB)  # flow 0 runs alone for a while
    b = open_waiting(sched, TransferClass.CASCADE_FLUSH, engine_id=1)
    # Flow 1 enters at flow 0's virtual time: service alternates from here
    # instead of flow 1 monopolizing the link for 16 quanta.
    grants = {0: 0, 1: 0}
    for _ in range(8):
        winner = sched._choose()
        grants[winner.request.engine_id] += 1
        sched._charge(winner, 1 * MiB)
    assert grants[0] >= 3
    assert grants[1] >= 3


def test_edf_orders_equal_vtime_prefetches():
    _, _, sched = make_sched()
    far = open_waiting(
        sched, TransferClass.HINTED_PREFETCH, engine_id=0, deadline=5.0
    )
    near = open_waiting(
        sched, TransferClass.HINTED_PREFETCH, engine_id=1, deadline=1.0
    )
    assert sched._choose() is near
    sched.finish(near)
    assert sched._choose() is far


def test_speculative_queue_bound_sheds():
    config = SchedConfig(enabled=True, max_speculative_queue=2)
    _, _, sched = make_sched(config)
    open_waiting(sched, TransferClass.SPECULATIVE_PREFETCH)
    open_waiting(sched, TransferClass.SPECULATIVE_PREFETCH)
    with pytest.raises(AdmissionError):
        sched.open(TransferRequest(TransferClass.SPECULATIVE_PREFETCH), 1 * MiB)
    assert sched.sheds == 1
    # Other classes are not subject to the speculative bound.
    sched.open(TransferRequest(TransferClass.CASCADE_FLUSH), 1 * MiB)


def test_flush_admission_blocks_until_drain():
    config = SchedConfig(enabled=True, max_flush_queue=1)
    _, _, sched = make_sched(config)
    first = sched.open(TransferRequest(TransferClass.CASCADE_FLUSH), 1 * MiB)
    admitted = threading.Event()

    def second():
        entry = sched.open(TransferRequest(TransferClass.CASCADE_FLUSH), 1 * MiB)
        admitted.set()
        sched.finish(entry)

    t = threading.Thread(target=second)
    t.start()
    assert not admitted.wait(0.2)  # backpressured while the queue is full
    sched.finish(first)
    assert admitted.wait(5)
    t.join(timeout=5)
    assert sched.admission_blocks == 1


def test_flush_admission_block_aborts_on_cancellation():
    config = SchedConfig(enabled=True, max_flush_queue=1)
    _, _, sched = make_sched(config)
    sched.open(TransferRequest(TransferClass.CASCADE_FLUSH), 1 * MiB)
    blocked_request = TransferRequest(TransferClass.CASCADE_FLUSH)
    errors = []

    def second():
        try:
            sched.open(blocked_request, 1 * MiB)
        except TransferError as exc:
            errors.append(exc)

    t = threading.Thread(target=second)
    t.start()
    blocked_request.cancel_event.set()  # flush abandoned while backpressured
    t.join(timeout=5)
    assert errors, "cancelled admission wait should raise"


def test_demand_read_preempts_speculative_only():
    _, _, sched = make_sched()
    spec = open_waiting(sched, TransferClass.SPECULATIVE_PREFETCH)
    hinted = open_waiting(sched, TransferClass.HINTED_PREFETCH)
    flush = open_waiting(sched, TransferClass.CASCADE_FLUSH)
    demand = open_waiting(sched, TransferClass.DEMAND_READ)
    assert spec.request.cancel_event.is_set()
    assert not hinted.request.cancel_event.is_set()
    assert not flush.request.cancel_event.is_set()
    assert not demand.request.cancel_event.is_set()
    assert sched.preemptions == 1


def test_preemption_disabled_by_config():
    _, _, sched = make_sched(SchedConfig(enabled=True, preempt_speculative=False))
    spec = open_waiting(sched, TransferClass.SPECULATIVE_PREFETCH)
    open_waiting(sched, TransferClass.DEMAND_READ)
    assert not spec.request.cancel_event.is_set()
    assert sched.preemptions == 0


def test_acquire_raises_when_cancelled_while_queued():
    _, _, sched = make_sched()
    request = TransferRequest(TransferClass.SPECULATIVE_PREFETCH)
    entry = sched.open(request, 1 * MiB)
    request.cancel_event.set()
    with pytest.raises(TransferError):
        sched.acquire(entry)
    sched.finish(entry)


def test_token_bucket_throttles_background_classes():
    config = SchedConfig(
        enabled=True,
        engine_rate_limit=float(1 * MiB),  # 1 MiB per nominal second
        burst_bytes=1 * MiB,
        quantum_bytes=1 * MiB,
    )
    clock, _, sched = make_sched(config)
    flush = open_waiting(sched, TransferClass.CASCADE_FLUSH, nbytes=4 * MiB)
    now = clock.now()
    assert sched._eligible(flush, now)  # full burst available
    sched.release(flush, 1 * MiB)  # spend the burst
    flush.waiting = True
    assert not sched._eligible(flush, clock.now())  # throttled until refill
    # Demand reads are never throttled.
    demand = open_waiting(sched, TransferClass.DEMAND_READ, nbytes=4 * MiB)
    assert sched._eligible(demand, clock.now())
    # The refill ETA is what the arbiter sleeps toward.
    bucket = sched._bucket(0, clock.now())
    assert bucket.eta(1 * MiB, clock.now()) > 0


def test_scheduled_transfer_end_to_end_priority():
    """Through Link.transfer: a demand read overtakes a queued flush and an
    in-flight speculative prefetch is preempted to zero further progress."""
    clock = VirtualClock(time_scale=0.01)
    link = Link("e2e", bandwidth=100 * MiB, clock=clock)
    config = SchedConfig(enabled=True, quantum_bytes=1 * MiB)
    sched = LinkScheduler(link, config, clock)
    link.scheduler = sched

    spec_request = TransferRequest(TransferClass.SPECULATIVE_PREFETCH)
    results = {}
    started = threading.Event()

    def speculative():
        started.set()
        try:
            # 1000 MiB at 100 MiB/s = 10 nominal seconds (100 ms wall) of
            # quanta — plenty of runway for the demand read to arrive.
            link.transfer(1000 * MiB, request=spec_request)
            results["spec"] = "completed"
        except TransferError:
            results["spec"] = "preempted"

    t = threading.Thread(target=speculative)
    t.start()
    started.wait(timeout=5)
    clock.sleep(0.5)  # let a few speculative quanta through
    demand_seconds = link.transfer(
        10 * MiB, request=TransferRequest(TransferClass.DEMAND_READ)
    )
    t.join(timeout=10)
    assert results["spec"] == "preempted"
    assert sched.preemptions == 1
    # The demand read never waited behind the (cancelled) 10 s speculation.
    assert demand_seconds < 5.0


def test_sched_context_attach_respects_enabled_flag():
    clock = VirtualClock(time_scale=0.001)
    off = SchedContext(SchedConfig(enabled=False), clock)
    link = Link("ctx", bandwidth=1 * MiB, clock=clock)
    off.attach(link)
    assert link.scheduler is None
    assert off.snapshot() == []

    on = SchedContext(SchedConfig(enabled=True), clock)
    on.attach(link)
    assert link.scheduler is not None
    first = link.scheduler
    on.attach(link)  # idempotent
    assert link.scheduler is first
    assert len(on.schedulers()) == 1
    snap = on.snapshot()
    assert snap[0]["link"] == "ctx"
    assert snap[0]["depth"] == 0


def test_untagged_transfers_bypass_the_scheduler():
    clock, link, sched = make_sched()
    seconds = link.transfer(10 * MiB)  # no request: legacy FIFO path
    assert seconds == pytest.approx(0.1, rel=0.1)
    assert sched.grants == 0


def test_sched_config_validation():
    with pytest.raises(ConfigError):
        SchedConfig(quantum_bytes=0)
    with pytest.raises(ConfigError):
        SchedConfig(default_weight=0)
    with pytest.raises(ConfigError):
        SchedConfig(engine_weights=((0, -1.0),))
    with pytest.raises(ConfigError):
        SchedConfig(admission="drop-everything")
    with pytest.raises(ConfigError):
        SchedConfig(engine_rate_limit=0.0)
    cfg = SchedConfig(engine_weights=((3, 2.5),))
    assert cfg.weight_of(3) == 2.5
    assert cfg.weight_of(7) == cfg.default_weight
