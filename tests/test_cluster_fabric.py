"""Cluster fabric: replica directory, peer-SSD reads, PFS aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, FaultConfig, ResilienceConfig
from repro.errors import TransientTransferError
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.service_load import run_service_load
from tests.conftest import tiny_config

CKPT = 64 * MiB


def cluster_config(num_nodes=2, processes_per_node=1, **cluster_kw):
    return tiny_config(
        num_nodes=num_nodes,
        processes_per_node=processes_per_node,
        cluster=ClusterConfig(enabled=True, **cluster_kw),
    )


def make_topology(config, **engine_kw):
    engine_kw.setdefault("flush_to_pfs", True)
    return ClusterTopology(config, engine_kwargs=engine_kw)


def submit_one(topo, ckpt_id=0, size=CKPT, client="c0"):
    session = topo.service.connect(client)
    buf = session.engine.device.alloc_buffer(size)
    buf.fill_random(make_rng(17 + ckpt_id, "fabric-test"))
    session.submit(ckpt_id, buf)
    for engine in topo.engines:
        engine.wait_for_flushes(timeout=600.0)
    return session, buf.checksum()


class TestReplicaDirectory:
    def test_flush_publishes_home_and_ring_successor(self):
        with make_topology(cluster_config(num_nodes=3)) as topo:
            session, _ = submit_one(topo)
            key = (session.engine.process_id, 0)
            assert topo.fabric.directory.holders(key) == [0, 1]

    def test_replica_factor_3_publishes_two_successors(self):
        with make_topology(cluster_config(num_nodes=4, replica_factor=3)) as topo:
            session, _ = submit_one(topo)
            key = (session.engine.process_id, 0)
            assert topo.fabric.directory.holders(key) == [0, 1, 2]

    def test_delete_withdraws_holder(self):
        with make_topology(cluster_config(num_nodes=2)) as topo:
            session, _ = submit_one(topo)
            key = (session.engine.process_id, 0)
            topo.cluster.nodes[1].ssd.delete(key)
            assert topo.fabric.directory.holders(key) == [0]
            topo.cluster.nodes[0].ssd.delete(key)
            assert topo.fabric.directory.holders(key) == []


class TestPeerReads:
    def test_cross_node_restore_reads_peer_ssd_not_pfs(self):
        cfg = cluster_config(num_nodes=3)
        with make_topology(cfg) as topo:
            session, want = submit_one(topo)
            target = topo.engines[2]  # node 2 holds no replica (factor 2)
            out = target.device.alloc_buffer(CKPT)
            session.restore(0, out, engine=target)
            assert out.checksum() == want
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.peer.reads"] == 1
            assert snap["cluster.peer.read_bytes"] == CKPT
            assert snap["tier.pfs.read_ops"] == 0

    def test_peer_reads_disabled_drops_to_pfs(self):
        cfg = cluster_config(num_nodes=3, peer_reads=False)
        with make_topology(cfg) as topo:
            session, want = submit_one(topo)
            target = topo.engines[2]
            out = target.device.alloc_buffer(CKPT)
            session.restore(0, out, engine=target)
            assert out.checksum() == want
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.peer.reads"] == 0
            assert snap["tier.pfs.read_ops"] == 1

    def test_peer_faster_than_pfs(self):
        """The point of the subsystem: SSD + fabric beats the PFS links."""
        latencies = {}
        for peer_reads in (True, False):
            cfg = cluster_config(num_nodes=3, peer_reads=peer_reads)
            with make_topology(cfg) as topo:
                session, _ = submit_one(topo)
                target = topo.engines[2]
                out = target.device.alloc_buffer(CKPT)
                latencies[peer_reads] = session.restore(0, out, engine=target)
        assert latencies[True] < latencies[False]

    def test_mid_read_peer_failure_falls_back_to_pfs(self):
        """A peer dying mid-transfer replays the stream off the PFS."""
        cfg = cluster_config(num_nodes=3)
        with make_topology(cfg) as topo:
            session, want = submit_one(topo)
            target = topo.engines[2]
            key = (session.engine.process_id, 0)
            peer = topo.fabric.peer_source(target.node_id, key)
            assert peer is not None
            handle = peer.open_get(key)

            def die(nbytes, request=None):
                raise TransientTransferError("peer died mid-read")

            handle._reader.read = die
            handle.read(handle.nominal_size)
            payload, _ = handle.finish()
            assert np.array_equal(payload, topo.cluster.pfs._read_payload(key))
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.peer.fallbacks"] == 1
            assert snap["cluster.peer.reads"] == 0  # not a pure peer read
            assert snap["tier.pfs.read_ops"] == 1
            # The restore path end-to-end still verifies against the
            # original checksum even with the injected failure burnt.
            out = target.device.alloc_buffer(CKPT)
            session.restore(0, out, engine=target)
            assert out.checksum() == want

    def test_ssd_outage_darkens_peers_and_restores_from_pfs(self):
        """A tier-global SSD outage: peer_source yields nothing, the
        engine's fabric routing drops to the PFS, restores still verify."""
        cfg = tiny_config(
            num_nodes=3,
            cluster=ClusterConfig(enabled=True),
            faults=FaultConfig(enabled=True),
        )
        with make_topology(cfg) as topo:
            session, want = submit_one(topo)  # flush completes pre-outage
            topo.cluster.faults.hard_outage = lambda tier: tier == "ssd"
            target = topo.engines[2]
            key = (session.engine.process_id, 0)
            assert topo.fabric.peer_source(target.node_id, key) is None
            out = target.device.alloc_buffer(CKPT)
            session.restore(0, out, engine=target)
            assert out.checksum() == want
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.peer.reads"] == 0
            assert snap["tier.pfs.read_ops"] >= 1


class TestAggregation:
    def test_concurrent_flushes_coalesce_and_journal_stays_consistent(self):
        cfg = tiny_config(
            num_nodes=1,
            processes_per_node=2,
            cluster=ClusterConfig(
                enabled=True,
                replica_factor=1,
                aggregation=True,
                aggregation_window_s=0.5,
            ),
            resilience=ResilienceConfig(enabled=True),
        )
        with make_topology(cfg) as topo:
            run_service_load(
                topo,
                clients=2,
                checkpoints_per_client=2,
                snapshot_bytes=CKPT,
                cross_node=False,
            )
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.agg.coalesced_ops"] >= 1
            # Batched commits save whole PFS ops: 4 objects, fewer ops.
            assert snap["tier.pfs.write_ops"] < 4
            assert topo.cluster.pfs.object_count() == 4
            # Journal consistency: every PFS journal entry must match a
            # committed blob (commit-at-end: no entry without bytes).
            # Checkpoint ids are globally unique: client i owns {2i, 2i+1}.
            for i, engine in enumerate(topo.engines):
                entries = topo.cluster.journal.entries_for(engine.process_id)
                assert set(entries) == {2 * i, 2 * i + 1}
                for ckpt_id, stores in entries.items():
                    assert "pfs" in stores
                    assert topo.cluster.pfs.contains((engine.process_id, ckpt_id))

    def test_batched_blobs_are_byte_identical_to_direct_puts(self):
        checks = {}
        for aggregation in (True, False):
            cfg = tiny_config(
                num_nodes=1,
                processes_per_node=2,
                cluster=ClusterConfig(
                    enabled=True,
                    replica_factor=1,
                    aggregation=aggregation,
                    aggregation_window_s=0.5,
                ),
            )
            with make_topology(cfg) as topo:
                result = run_service_load(
                    topo,
                    clients=2,
                    checkpoints_per_client=2,
                    snapshot_bytes=CKPT,
                    cross_node=False,
                )
                assert result["checksums_ok"]
                pfs = topo.cluster.pfs
                checks[aggregation] = {
                    key: int(pfs._read_payload(key)[::4096].sum())
                    for i, engine in enumerate(topo.engines)
                    for key in [
                        (engine.process_id, 2 * i),
                        (engine.process_id, 2 * i + 1),
                    ]
                }
        assert checks[True] == checks[False]

    def test_aggregation_failure_raises_in_submitting_thread(self):
        cfg = tiny_config(
            num_nodes=1,
            cluster=ClusterConfig(
                enabled=True,
                replica_factor=1,
                aggregation=True,
                aggregation_window_s=0.0,
            ),
        )
        with make_topology(cfg) as topo:
            fabric = topo.fabric

            def boom(*args, **kwargs):
                raise TransientTransferError("pfs gone")

            topo.cluster.pfs.put = boom
            with pytest.raises(TransientTransferError):
                fabric.pfs_put(0, (0, 99), np.zeros(1024, dtype=np.uint8), 1024)
