"""Exporter round-trips: Chrome-trace validity and lossless JSONL re-import.

The analyzer must see the same op DAGs from a saved ``.events.jsonl`` as
from a live bus snapshot (``repro analyze`` accepts both), so
``write_jsonl`` → ``read_jsonl`` must preserve event count, timing, and
causal identity exactly.  The Chrome export must be valid JSON with
non-negative timestamps/durations and the causal fields surfaced as args.
"""

import io
import json

from repro.analysis.dag import build_dag
from repro.telemetry.bus import TraceEvent
from repro.telemetry.exporters import chrome_trace, read_jsonl, write_jsonl

from tests.test_analysis import scenario_events


def sample_events():
    return [
        TraceEvent(
            name="copy-in",
            track="p0-app",
            ts=0.0,
            phase="X",
            dur=1.5,
            args={"bytes": 1024},
            op_id="c0:1",
            category="transfer",
        ),
        TraceEvent(
            name="promote",
            track="p0-prefetch",
            ts=2.0,
            phase="X",
            dur=0.5,
            args={"tier": "ssd"},
            op_id="f0:1",
            parent_id="c0:1",
            category="transfer",
        ),
        TraceEvent(name="durable", track="p0-app", ts=1.4, op_id="c0:1"),
        # Untagged pre-causal event; args exercise the _json_default path.
        TraceEvent(
            name="evict-window",
            track="p0-gpu-cache",
            ts=3.0,
            args={"score": float("inf")},
        ),
    ]


# -- chrome trace -------------------------------------------------------------
def test_chrome_trace_is_valid_json_with_sane_timing():
    doc = chrome_trace(sample_events())
    text = json.dumps(doc, default=str)
    parsed = json.loads(text)
    assert "traceEvents" in parsed
    entries = [e for e in parsed["traceEvents"] if e["ph"] in ("X", "i")]
    assert len(entries) == len(sample_events())
    for entry in entries:
        assert entry["ts"] >= 0
        if entry["ph"] == "X":
            assert entry["dur"] >= 0
    # Metadata names every track's thread and each pid once.
    assert any(e["name"] == "process_name" for e in parsed["traceEvents"])
    assert sum(e["name"] == "thread_name" for e in parsed["traceEvents"]) == 3


def test_chrome_trace_surfaces_causal_fields_as_args():
    doc = chrome_trace(sample_events())
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] in ("X", "i")}
    assert by_name["copy-in"]["args"]["op"] == "c0:1"
    assert by_name["copy-in"]["args"]["cat"] == "transfer"
    assert by_name["promote"]["args"]["parent"] == "c0:1"
    assert "op" not in by_name["evict-window"]["args"]


def test_chrome_trace_timestamps_scale_to_microseconds():
    doc = chrome_trace(sample_events())
    copy = next(e for e in doc["traceEvents"] if e.get("name") == "copy-in")
    assert copy["ts"] == 0.0
    assert copy["dur"] == 1.5e6


# -- jsonl round-trip ---------------------------------------------------------
def test_jsonl_roundtrip_preserves_events():
    events = sample_events()
    buf = io.StringIO()
    assert write_jsonl(buf, events) == len(events)
    back = read_jsonl(io.StringIO(buf.getvalue()))
    assert len(back) == len(events)
    for orig, re in zip(events, back):
        assert (re.name, re.track, re.ts, re.phase, re.dur) == (
            orig.name,
            orig.track,
            orig.ts,
            orig.phase,
            orig.dur,
        )
        assert (re.op_id, re.parent_id, re.category) == (
            orig.op_id,
            orig.parent_id,
            orig.category,
        )


def test_jsonl_omits_causal_keys_when_unset():
    buf = io.StringIO()
    write_jsonl(buf, sample_events())
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    tagged = next(rec for rec in lines if rec["name"] == "copy-in")
    plain = next(rec for rec in lines if rec["name"] == "evict-window")
    assert tagged["op_id"] == "c0:1"
    assert "op_id" not in plain
    assert "parent_id" not in plain
    assert "category" not in plain


def test_jsonl_roundtrip_preserves_dag_shape(tmp_path):
    """A real traced run re-imported from disk yields the identical DAG."""
    events = scenario_events()
    path = tmp_path / "run.events.jsonl"
    write_jsonl(str(path), events)
    back = read_jsonl(str(path))
    assert len(back) == len(events)
    live, filed = build_dag(events), build_dag(back)
    assert sorted(live.ops) == sorted(filed.ops)
    assert len(live.orphans) == len(filed.orphans) == 0
    for op_id, node in live.ops.items():
        other = filed.ops[op_id]
        assert len(other.events) == len(node.events)
        assert other.parent_id == node.parent_id
        assert other.wall == node.wall
        assert sorted(other.children) == sorted(node.children)
