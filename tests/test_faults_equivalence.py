"""``FaultConfig.enabled=False`` / ``ResilienceConfig.enabled=False``
change nothing — the same discipline as ``SchedConfig`` / ``ReduceConfig``.

The fault-injection plumbing (the ``link.fault_injector`` hook, the tier
outage/corruption gates in the stores, the retry/reroute/reverify/journal
paths in the engine and flusher) must be invisible when both switches are
off: no injector attaches, ``engine.retry_policy`` is ``None`` (so every
retry wrapper collapses to a plain call), no CRC is stamped into store
metadata, and the journal never sees a commit.  This test runs the same
deterministic scenario on two fresh clusters — the default config and a
config with every *other* fault/resilience knob set to non-default values
but both ``enabled=False`` — and asserts identical eviction decision
streams, final cache layouts, tier byte counters, store metadata and
restored bytes.

(Checkpoints are serialized with ``wait_for_flushes`` between operations so
thread interleaving cannot perturb eviction order; event timestamps are
excluded, as wall-clock jitter feeds the virtual clock.)
"""

import json

from repro.config import FaultConfig, ResilienceConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import tiny_config

CKPT = 128 * MiB
VERSIONS = 14


def _run_scenario(faults_cfg, resilience_cfg):
    cfg = tiny_config(telemetry=True)
    if faults_cfg is not None:
        cfg = cfg.with_(faults=faults_cfg)
    if resilience_cfg is not None:
        cfg = cfg.with_(resilience=resilience_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            # The gates under test: nothing attached, nothing active.
            assert cluster.faults.plan is None
            assert not cluster.faults.meta_crc
            assert not cluster.health.enabled
            assert engine.retry_policy is None
            assert not engine.resilient
            sums = {}
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(CKPT)
                buf.fill_random(make_rng(v, "faults-equiv"))
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                # Serialize the cascade: decisions become deterministic.
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, VERSIONS, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            assert cluster.journal.commits == 0  # journal never engaged
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in cluster.telemetry.bus.snapshot()
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            # Store metadata must carry no CRC stamp when both sides are
            # off — byte-identical sidecars to the pre-subsystem runtime.
            metas = {
                str(key): engine.ssd.meta(key) or {}
                for key in sorted(engine.ssd.keys_for_process(engine.process_id))
            }
            durable = {
                v: (
                    engine.catalog.get(v).durable_level.name
                    if engine.catalog.get(v).durable_level is not None
                    else None
                )
                for v in range(VERSIONS)
            }
            return decisions, layouts, tier_bytes, metas, durable, restored


def test_disabled_faults_and_resilience_are_bit_identical():
    default = _run_scenario(None, None)
    # Every non-default knob set; enabled=False must make them all inert.
    off = _run_scenario(
        FaultConfig(
            enabled=False,
            seed=1234,
            transfer_fault_rate=0.8,
            fault_links=("ssd", "pfs"),
            min_fault_fraction=0.1,
            max_fault_fraction=0.2,
            tier_outages=(("ssd", 0.0, 1e9, 0.0),),
            corruption_rate=1.0,
            crash_point="before-h2f",
            crash_ckpt=0,
        ),
        ResilienceConfig(
            enabled=False,
            max_retries=9,
            backoff_base_s=1.0,
            backoff_factor=3.0,
            backoff_max_s=10.0,
            jitter=0.9,
            retry_classes=(("CASCADE_FLUSH", 2),),
            breaker_threshold=1,
            breaker_reset_s=0.1,
            reroute=False,
            backfill=False,
            reverify=False,
            journal=False,
        ),
    )
    for got, want in zip(off, default):
        assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
            want, sort_keys=True, default=str
        )
    decisions, _, _, metas, durable, _ = default
    assert len(decisions) > 0  # the scenario must actually exercise eviction
    assert all("stored_crc" not in meta for meta in metas.values())
    assert any(level is not None for level in durable.values())
