"""Recorder, throughput math, series extraction, report rendering."""

import pytest

from repro.metrics.prefetch import mean_prefetch_distance, prefetch_distance_series
from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.metrics.report import render_series, render_table
from repro.metrics.throughput import (
    restore_rate_series,
    stacked_per_process,
    throughput,
)
from repro.util.units import GiB


def ev(kind, ckpt_id=0, blocked=1.0, nbytes=GiB, distance=None):
    return OpEvent(
        kind=kind,
        ckpt_id=ckpt_id,
        started_at=0.0,
        blocked=blocked,
        nominal_bytes=nbytes,
        prefetch_distance=distance,
    )


class TestRecorder:
    def test_record_and_filter(self):
        r = Recorder(process_id=3)
        r.record(ev(OpKind.CHECKPOINT))
        r.record(ev(OpKind.RESTORE))
        r.record(ev(OpKind.FLUSH))
        assert len(r.checkpoints()) == 1
        assert len(r.restores()) == 1
        assert r.counts() == {"checkpoint": 1, "restore": 1, "flush": 1}

    def test_totals(self):
        r = Recorder()
        r.record(ev(OpKind.CHECKPOINT, blocked=1.0))
        r.record(ev(OpKind.CHECKPOINT, blocked=3.0))
        assert r.total_blocked(OpKind.CHECKPOINT) == 4.0
        assert r.total_bytes(OpKind.CHECKPOINT) == 2 * GiB

    def test_clear(self):
        r = Recorder()
        r.record(ev(OpKind.CHECKPOINT))
        r.clear()
        assert r.counts() == {}


class TestThroughput:
    def test_single_process(self):
        r = Recorder()
        r.record(ev(OpKind.CHECKPOINT, blocked=2.0, nbytes=4 * GiB))
        r.record(ev(OpKind.RESTORE, blocked=1.0, nbytes=4 * GiB))
        s = throughput([r])
        assert s.checkpoint == pytest.approx(2 * GiB)
        assert s.restore == pytest.approx(4 * GiB)
        assert s.total_bytes == 4 * GiB

    def test_pooled_rate_is_bytes_weighted(self):
        fast = Recorder()
        fast.record(ev(OpKind.CHECKPOINT, blocked=0.001, nbytes=GiB))
        slow = Recorder()
        slow.record(ev(OpKind.CHECKPOINT, blocked=10.0, nbytes=GiB))
        s = throughput([fast, slow])
        # pooled: 2 GiB over ~10 s — not dominated by the fast outlier
        assert s.checkpoint == pytest.approx(2 * GiB / 10.001, rel=1e-3)
        assert s.checkpoint_mean > s.checkpoint  # arithmetic mean inflated

    def test_empty_recorders_rejected(self):
        with pytest.raises(ValueError):
            throughput([])

    def test_no_events_gives_zero(self):
        s = throughput([Recorder()])
        assert s.checkpoint == 0.0 and s.restore == 0.0

    def test_restore_rate_series(self):
        r = Recorder()
        r.record(ev(OpKind.RESTORE, blocked=1.0, nbytes=GiB))
        r.record(ev(OpKind.RESTORE, blocked=0.5, nbytes=GiB))
        series = restore_rate_series(r)
        assert series[0] == (0, pytest.approx(GiB))
        assert series[1] == (1, pytest.approx(2 * GiB))

    def test_stacked_per_process(self):
        r1 = Recorder(process_id=0)
        r1.record(ev(OpKind.CHECKPOINT, blocked=1.0, nbytes=GiB))
        r2 = Recorder(process_id=1)
        r2.record(ev(OpKind.RESTORE, blocked=1.0, nbytes=GiB))
        rows = stacked_per_process([r1, r2])
        assert rows[0] == (0, pytest.approx(GiB), 0.0)
        assert rows[1][0] == 1 and rows[1][2] == pytest.approx(GiB)


class TestPrefetchSeries:
    def test_series(self):
        r = Recorder()
        r.record(ev(OpKind.RESTORE, distance=2))
        r.record(ev(OpKind.RESTORE, distance=None))
        r.record(ev(OpKind.RESTORE, distance=4))
        assert prefetch_distance_series(r) == [(0, 2), (1, 0), (2, 4)]
        assert mean_prefetch_distance(r) == pytest.approx(2.0)

    def test_empty_mean(self):
        assert mean_prefetch_distance(Recorder()) == 0.0


class TestReport:
    def test_render_table_alignment(self):
        out = render_table("Title", ["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_render_table_formats_rates(self):
        out = render_table("T", ["rate"], [[float(25 * GiB)]])
        assert "25GiB/s" in out

    def test_render_series_downsamples(self):
        series = [(i, i) for i in range(100)]
        out = render_series("S", series, max_points=10)
        assert len(out.splitlines()) < 30
