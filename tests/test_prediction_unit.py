"""Unit tests for the prediction subsystem: history ring, predictors,
speculation validator, and the synthetic restore queue overlay."""

from __future__ import annotations

import pytest

from repro.config import PredictConfig
from repro.errors import ConfigError
from repro.predict import (
    AccessHistory,
    Candidate,
    HybridPredictor,
    MarkovPredictor,
    RecencyPredictor,
    SpeculationValidator,
    SyntheticRestoreQueue,
    build_predictor,
)
from repro.predict.history import KIND_CHECKPOINT, KIND_RESTORE, AccessEvent
from repro.telemetry import Telemetry


def restore(ts, ckpt, producer):
    return AccessEvent(ts=ts, kind=KIND_RESTORE, ckpt_id=ckpt, producer=producer)


def checkpoint(ts, ckpt, producer):
    return AccessEvent(ts=ts, kind=KIND_CHECKPOINT, ckpt_id=ckpt, producer=producer)


# -- config --------------------------------------------------------------------
class TestPredictConfig:
    def test_defaults_disabled(self):
        cfg = PredictConfig()
        assert not cfg.enabled
        assert cfg.predictor == "hybrid"

    @pytest.mark.parametrize(
        "changes",
        [
            {"predictor": "oracle"},
            {"history_capacity": 0},
            {"max_queue": 0},
            {"min_confidence": -0.1},
            {"hit_floor": 1.5},
            {"min_samples": 0},
            {"suspend_s": -1.0},
            {"ewma_alpha": 0.0},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ConfigError):
            PredictConfig(**changes)


# -- history -------------------------------------------------------------------
class TestAccessHistory:
    def test_ring_bounds_and_total(self):
        hist = AccessHistory(capacity=4)
        for i in range(10):
            hist.record(float(i), KIND_RESTORE, i, producer=i % 2)
        assert len(hist) == 4
        assert hist.recorded == 10
        assert [e.ckpt_id for e in hist.recent(2)] == [8, 9]
        assert [e.ckpt_id for e in hist] == [6, 7, 8, 9]


# -- recency -------------------------------------------------------------------
class TestRecencyPredictor:
    def test_learns_periodic_gap(self):
        pred = RecencyPredictor(alpha=0.25)
        for i in range(6):
            pred.observe(restore(i * 10.0, ckpt=i, producer="a"))
        cands = [Candidate(ckpt_id=99, producer="a", created_ts=50.0)]
        out = pred.predict(cands, now=50.0)
        assert len(out) == 1
        assert out[0].ckpt_id == 99
        # Perfectly regular gaps: expected = last + gap, high confidence.
        assert out[0].expected_ts == pytest.approx(60.0)
        assert out[0].confidence > 0.5

    def test_irregular_gaps_lower_confidence(self):
        regular = RecencyPredictor(alpha=0.25)
        jittery = RecencyPredictor(alpha=0.25)
        jittery_ts = 0.0
        for i in range(8):
            regular.observe(restore(i * 10.0, ckpt=i, producer="a"))
            jittery.observe(restore(jittery_ts, ckpt=i, producer="a"))
            jittery_ts += 10.0 if i % 2 == 0 else 90.0
        cand = [Candidate(ckpt_id=1, producer="a", created_ts=0.0)]
        c_reg = regular.predict(cand, now=100.0)[0].confidence
        c_jit = jittery.predict(cand, now=300.0)[0].confidence
        assert c_reg > c_jit

    def test_cold_producer_uses_global_prior(self):
        pred = RecencyPredictor(alpha=0.25)
        for i in range(4):
            pred.observe(restore(i * 5.0, ckpt=i, producer="hot"))
        # "cold" suspended once at t=12, never restored.
        pred.observe(checkpoint(12.0, ckpt=40, producer="cold"))
        out = pred.predict(
            [Candidate(ckpt_id=40, producer="cold", created_ts=12.0)], now=13.0
        )
        assert out[0].confidence == pytest.approx(RecencyPredictor.COLD_CONFIDENCE)
        # Global gap EWMA is 5.0: expected = last activity + prior.
        assert out[0].expected_ts == pytest.approx(17.0)

    def test_soonest_expected_first(self):
        pred = RecencyPredictor(alpha=0.25)
        for i in range(4):
            pred.observe(restore(i * 2.0, ckpt=i, producer="fast"))
        for i in range(4):
            pred.observe(restore(i * 50.0, ckpt=10 + i, producer="slow"))
        out = pred.predict(
            [
                Candidate(ckpt_id=1, producer="slow", created_ts=150.0),
                Candidate(ckpt_id=2, producer="fast", created_ts=6.0),
            ],
            now=150.0,
        )
        assert [p.ckpt_id for p in out] == [2, 1]


# -- markov --------------------------------------------------------------------
class TestMarkovPredictor:
    def test_follows_deterministic_cycle(self):
        pred = MarkovPredictor()
        # a -> b -> c -> a, twice around.
        for t, producer in enumerate(["a", "b", "c", "a", "b", "c", "a"]):
            pred.observe(restore(float(t), ckpt=t, producer=producer))
        cands = [
            Candidate(ckpt_id=101, producer="b", created_ts=5.0),
            Candidate(ckpt_id=102, producer="c", created_ts=5.0),
        ]
        out = pred.predict(cands, now=7.0)
        # Last restore was "a": the chain predicts b then c.
        assert [p.ckpt_id for p in out] == [101, 102]
        assert out[0].confidence == pytest.approx(1.0)
        assert out[0].expected_ts < out[1].expected_ts

    def test_newest_candidate_per_producer_wins(self):
        pred = MarkovPredictor()
        pred.observe(restore(0.0, ckpt=0, producer="a"))
        pred.observe(restore(1.0, ckpt=1, producer="b"))
        pred.observe(restore(2.0, ckpt=2, producer="a"))
        cands = [
            Candidate(ckpt_id=7, producer="b", created_ts=1.0),
            Candidate(ckpt_id=9, producer="b", created_ts=3.0),
        ]
        out = pred.predict(cands, now=3.0)
        assert out and out[0].ckpt_id == 9

    def test_no_history_no_predictions(self):
        pred = MarkovPredictor()
        assert pred.predict(
            [Candidate(ckpt_id=1, producer="a", created_ts=0.0)], now=0.0
        ) == []


class TestHybridPredictor:
    def test_markov_leads_recency_fills(self):
        pred = HybridPredictor(alpha=0.25)
        # "c" only has recency data; the restore stream then settles into
        # the structured transition a -> b and ends on "a".
        pred.observe(restore(0.0, ckpt=20, producer="c"))
        pred.observe(restore(1.0, ckpt=21, producer="c"))
        for t, producer in enumerate(["a", "b", "a", "b", "a"]):
            pred.observe(restore(2.0 + t, ckpt=t, producer=producer))
        cands = [
            Candidate(ckpt_id=31, producer="b", created_ts=6.0),
            Candidate(ckpt_id=32, producer="c", created_ts=1.0),
        ]
        out = pred.predict(cands, now=7.0)
        ids = [p.ckpt_id for p in out]
        assert ids[0] == 31  # markov: a -> b
        assert 32 in ids  # recency fills the rest
        assert len(ids) == len(set(ids))  # deduped

    def test_factory(self):
        assert build_predictor("recency").name == "recency"
        assert build_predictor("markov").name == "markov"
        assert build_predictor("hybrid").name == "hybrid"
        with pytest.raises(ValueError):
            build_predictor("oracle")


# -- validation ----------------------------------------------------------------
def make_validator(**changes):
    kwargs = {"hit_floor": 0.5, "min_samples": 4, "suspend_s": 10.0, **changes}
    cfg = PredictConfig(enabled=True, **kwargs)
    return SpeculationValidator(cfg, Telemetry(enabled=True), track="t"), cfg


class TestSpeculationValidator:
    def test_hits_keep_speculation_active(self):
        val, _ = make_validator()
        for ckpt in range(6):
            val.on_staged(ckpt, 100, now=float(ckpt))
            val.on_consume(ckpt, now=float(ckpt) + 0.5)
        assert val.active(now=10.0)
        assert val.hit_rate() == pytest.approx(1.0)
        assert val.confidence_scale() == pytest.approx(1.0)

    def test_staging_idempotent_per_chain(self):
        val, _ = make_validator()
        val.on_staged(1, 100, now=0.0)
        val.on_staged(1, 100, now=0.1)  # second hop of the same chain
        val.on_consume(1, now=1.0)
        assert val.stats()["hits"] == 1
        assert val.samples == 1

    def test_unknown_outcomes_ignored(self):
        val, _ = make_validator()
        val.on_consume(5, now=1.0)  # never staged: demand restore
        val.on_abandoned(6, now=1.0)  # never staged: normal eviction
        assert val.samples == 0

    def test_wastes_suspend_then_probation(self):
        val, cfg = make_validator()
        for ckpt in range(cfg.min_samples):
            val.on_staged(ckpt, 100, now=float(ckpt))
            val.on_abandoned(ckpt, now=float(ckpt) + 0.5)
        assert not val.active(now=4.0)  # suspended: all wastes
        assert val.stats()["suspensions"] == 1
        assert not val.active(now=4.0 + cfg.suspend_s - 1.0)
        # The window elapses: probation resets the estimate.
        assert val.active(now=20.0)
        assert val.hit_rate() is None
        assert val.samples == 0

    def test_decayed_accuracy_scales_confidence(self):
        val, cfg = make_validator(hit_floor=0.2)
        outcomes = [1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0]
        for ckpt, outcome in enumerate(outcomes):
            val.on_staged(ckpt, 100, now=float(ckpt))
            if outcome:
                val.on_consume(ckpt, now=float(ckpt) + 0.5)
            else:
                val.on_abandoned(ckpt, now=float(ckpt) + 0.5)
        scale = val.confidence_scale()
        assert cfg.hit_floor <= scale < 1.0
        assert scale == pytest.approx(max(val.hit_rate(), cfg.hit_floor))


# -- synthetic queue -----------------------------------------------------------
class TestSyntheticRestoreQueue:
    def make(self):
        return SyntheticRestoreQueue(telemetry=Telemetry(enabled=True))

    def test_overlay_auto_starts_and_orders(self):
        q = self.make()
        assert not q.started
        assert q.refresh([(3, 0.9), (1, 0.5)])
        assert q.started
        assert q.head() == 3
        assert q.upcoming(4) == [3, 1]
        assert len(q) == 2
        assert q.distance(3) == 0 and q.distance(1) == 1
        assert q.is_hinted(3) and not q.is_explicit(3)
        assert q.confidence(3) == pytest.approx(0.9)

    def test_explicit_hints_outrank_overlay(self):
        q = self.make()
        q.refresh([(3, 0.9), (1, 0.5)])
        q.enqueue(7)
        assert q.head() == 7
        assert q.upcoming(4) == [7, 3, 1]
        assert q.distance(3) == 1  # shifted past the live explicit hints
        assert q.is_explicit(7)

    def test_real_hint_revokes_overlay_entry(self):
        q = self.make()
        q.refresh([(3, 0.9), (1, 0.5)])
        q.enqueue(3)  # the application hints a predicted id
        assert q.is_explicit(3)
        assert q.upcoming(4) == [3, 1]
        assert q.confidence(3) is None

    def test_refresh_replaces_wholesale(self):
        q = self.make()
        q.refresh([(3, 0.9), (1, 0.5)])
        assert q.refresh([(5, 0.8)])
        assert q.upcoming(4) == [5]
        assert q.distance(3) is None
        assert 3 not in q.hint_index()
        assert 5 in q.hint_index()

    def test_refresh_filters_explicit_and_consumed(self):
        q = self.make()
        q.enqueue(7)
        q.start()
        q.consume(7)
        q.refresh([(7, 0.9), (2, 0.4), (2, 0.3)])
        assert q.upcoming(4) == [2]

    def test_synthetic_consume_counts_no_deviation(self):
        telemetry = Telemetry(enabled=True)
        q = SyntheticRestoreQueue(telemetry=telemetry)
        q.refresh([(3, 0.9), (1, 0.5)])
        q.consume(1)  # out of predicted order
        assert telemetry.registry.counter("hints.deviations").value == 0
        assert q.upcoming(4) == [3]
        # Consumed ids never re-enter the overlay.
        q.refresh([(1, 0.9), (3, 0.5)])
        assert q.upcoming(4) == [3]

    def test_epochs_bump_on_overlay_change(self):
        q = self.make()
        before = q.shift_epoch
        q.refresh([(3, 0.9)])
        assert q.shift_epoch > before
        mid = q.shift_epoch
        assert not q.refresh([(3, 0.1)])  # same order: no epoch churn
        assert q.shift_epoch == mid
