"""Eviction decisions are identical with and without the cost cache.

The version-keyed :class:`FragmentCost` cache inside ``CacheBuffer`` is a
pure memoization: PR-correctness requires that enabling it changes *no*
eviction decision.  This test runs the same deterministic, single-threaded
reservation/transition script twice — once with ``cost_cache_enabled`` and
once without — with telemetry enabled, and asserts that the ``evict-window``
decision streams (scores, offsets, member sets) are byte-identical, and that
the final arena layouts match.

Event timestamps are excluded from the comparison: the virtual clock tracks
real wall time, which is not deterministic across runs, while the decision
content is.
"""

import json

from repro.clock import VirtualClock
from repro.config import ScaleModel
from repro.core.cache import CacheBuffer
from repro.core.catalog import CheckpointRecord
from repro.core.lifecycle import CkptState
from repro.core.restore_queue import RestoreQueue
from repro.core.sync import Monitor
from repro.simgpu.memory import Arena
from repro.telemetry import Telemetry
from repro.tiers.base import TierLevel
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB, time_scale=0.002)
SLOT = 1 * MiB


def _make_cache(cost_cache_enabled: bool, capacity_slots: int = 6):
    clock = VirtualClock(time_scale=0.002)
    telemetry = Telemetry(clock, enabled=True)
    cache = CacheBuffer(
        name="equiv",
        level=TierLevel.GPU,
        arena=Arena("equiv", capacity_slots * SLOT, SCALE),
        monitor=Monitor(clock),
        clock=clock,
        restore_queue=RestoreQueue(),
        flush_estimate=lambda n: 0.25 * n / MiB,  # deterministic, size-varying
        telemetry=telemetry,
    )
    cache.cost_cache_enabled = cost_cache_enabled
    return cache, telemetry


def _flush(record, level=TierLevel.GPU):
    inst = record.instance(level)
    if inst.state is CkptState.WRITE_IN_PROGRESS:
        inst.transition(CkptState.WRITE_COMPLETE)
    inst.transition(CkptState.FLUSHED)
    record.durable_level = TierLevel.SSD


def _run_scenario(cost_cache_enabled: bool, split: bool = False):
    """One scripted cache life with plenty of decision-relevant variety:
    flushed / writing / pinned members, flush-pending flips, hints arriving
    mid-life, forced evictions, and multi-slot incoming checkpoints."""
    cache, telemetry = _make_cache(cost_cache_enabled)
    if split:
        cache.write_boundary = 3 * SLOT  # exercise limit/min_offset regions
    records = {}

    def rec(ckpt_id, slots=1):
        r = CheckpointRecord(ckpt_id, slots * SLOT, slots * SLOT, 0)
        records[ckpt_id] = r
        return r

    # Fill the cache with writes in assorted life-cycle positions.
    for i in range(6 if not split else 3):
        assert cache.reserve(rec(i), CkptState.WRITE_IN_PROGRESS, blocking=False) is not None
    _flush(records[0])
    _flush(records[1])
    records[1].instance(TierLevel.GPU).flush_pending = True
    _flush(records[2])
    if not split:
        _flush(records[3])
        inst4 = records[4].instance(TierLevel.GPU)
        inst4.transition(CkptState.WRITE_COMPLETE)
        inst4.transition(CkptState.READ_COMPLETE)  # crossover: pinned
        records[4].durable_level = TierLevel.SSD
        # id 5 stays WRITE_IN_PROGRESS (a barrier-ish, non-evictable member).

    # Hints arrive: some cached ids, some future ones.
    for hint in (3, 2, 9, 4, 0):
        cache.queue.enqueue(hint)
    cache.queue.start()

    # A two-slot write must find (or make) a contiguous two-slot window.
    cache.reserve(rec(6, slots=2), CkptState.WRITE_IN_PROGRESS, blocking=False)
    # Flush-pending flip changes the predicted state_ts of id 1.
    records[1].instance(TierLevel.GPU).flush_pending = False
    cache.reserve(rec(7), CkptState.WRITE_IN_PROGRESS, blocking=False)
    # Forced (demand) reservation may evict the pinned READ_COMPLETE extent.
    cache.reserve(rec(8), CkptState.READ_IN_PROGRESS, blocking=False, allow_pinned=True)
    # Consumption makes everything left evictable; one more multi-slot write.
    for r in records.values():
        inst = r.peek(TierLevel.GPU)
        if inst is not None:
            r.consumed = True
            if inst.state is CkptState.WRITE_COMPLETE:
                inst.try_transition(CkptState.READ_COMPLETE)
            inst.try_transition(CkptState.CONSUMED)
    cache.queue.consume(4)
    cache.reserve(rec(10, slots=2), CkptState.WRITE_IN_PROGRESS, blocking=False)

    decisions = [
        {"name": ev.name, "args": ev.args}
        for ev in telemetry.bus.snapshot()
        if ev.name == "evict-window"
    ]
    layout = [
        (frag.offset, frag.size, None if frag.is_gap else frag.record.ckpt_id)
        for frag in cache.table.fragments()
    ]
    cache.table.check_invariants()
    return decisions, layout


def test_cost_cache_changes_no_eviction_decision():
    cached, layout_cached = _run_scenario(cost_cache_enabled=True)
    plain, layout_plain = _run_scenario(cost_cache_enabled=False)
    assert len(cached) > 0  # the scenario must actually exercise eviction
    assert json.dumps(cached, sort_keys=True) == json.dumps(plain, sort_keys=True)
    assert layout_cached == layout_plain


def test_cost_cache_equivalence_with_split_regions():
    cached, layout_cached = _run_scenario(cost_cache_enabled=True, split=True)
    plain, layout_plain = _run_scenario(cost_cache_enabled=False, split=True)
    assert json.dumps(cached, sort_keys=True) == json.dumps(plain, sort_keys=True)
    assert layout_cached == layout_plain


def test_scheduled_link_estimates_match_fifo_link():
    """Eviction scoring reads ``Link.estimate``/``pending_bytes``; attaching a
    QoS scheduler must not change those figures for an identical transfer
    sequence, so scheduling cannot perturb eviction decisions."""
    from repro.config import SchedConfig
    from repro.sched import LinkScheduler, TransferClass, TransferRequest
    from repro.simgpu.bandwidth import Link

    def run(with_sched: bool):
        clock = VirtualClock(time_scale=0.002)
        link = Link("equiv", bandwidth=100 * MiB, clock=clock, latency=0.01)
        if with_sched:
            link.scheduler = LinkScheduler(link, SchedConfig(enabled=True), clock)
        observed = []
        for i, nbytes in enumerate((10 * MiB, 50 * MiB, 1 * MiB, 128 * MiB)):
            request = (
                TransferRequest(
                    TransferClass(i % len(TransferClass)), engine_id=i % 2
                )
                if with_sched
                else None
            )
            link.transfer(nbytes, request=request)
            observed.append(
                (
                    link.pending_bytes,
                    link.bytes_moved,
                    link.transfer_count,
                    round(link.estimate(64 * MiB), 9),
                    round(link.estimate(64 * MiB, include_pending=False), 9),
                )
            )
        return observed

    assert run(with_sched=True) == run(with_sched=False)
