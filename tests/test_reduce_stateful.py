"""Model-based (hypothesis stateful) test of the chunk store + registry.

A random interleaving of puts (including shared digests), releases and
full-image evictions is replayed against a reference refcount model; after
every rule the store's internal accounting, the registry's liveness view
and the model must agree — refcounts never corrupt, arena byte accounting
never leaks, releases without a matching put always raise.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.reduce import ChunkAccountingError, ChunkRegistry, ChunkStore
from repro.tiers.base import TierLevel
from repro.util.units import KiB

#: Small digest pool so puts collide often (sharing is the interesting case).
DIGESTS = [bytes([i]) * 16 for i in range(8)]
SIZE_OF = {d: (i + 1) * 64 * KiB for i, d in enumerate(DIGESTS)}


class ChunkStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.stores = {
            level: ChunkStore(level) for level in (TierLevel.HOST, TierLevel.SSD)
        }
        self.registry = ChunkRegistry()
        #: model: (level, digest) -> live reference count
        self.model = {}

    def _count(self, level, digest) -> int:
        return self.model.get((level, digest), 0)

    @rule(
        level=st.sampled_from([TierLevel.HOST, TierLevel.SSD]),
        idx=st.integers(0, len(DIGESTS) - 1),
    )
    def put(self, level, idx):
        digest = DIGESTS[idx]
        was_new = self.stores[level].add(digest, SIZE_OF[digest])
        self.registry.add(digest, SIZE_OF[digest])
        assert was_new == (self._count(level, digest) == 0)
        self.model[(level, digest)] = self._count(level, digest) + 1

    @precondition(lambda self: any(self.model.values()))
    @rule(data=st.data())
    def release(self, data):
        level, digest = data.draw(
            st.sampled_from(sorted(k for k, v in self.model.items() if v > 0))
        )
        gone = self.stores[level].release(digest)
        self.registry.release(digest)
        assert gone == (self._count(level, digest) == 1)
        self.model[(level, digest)] -= 1

    @precondition(lambda self: any(self.model.values()))
    @rule(data=st.data())
    def evict_all_refs(self, data):
        """Release every reference a tier holds on one digest (image churn)."""
        level, digest = data.draw(
            st.sampled_from(sorted(k for k, v in self.model.items() if v > 0))
        )
        for _ in range(self.model[(level, digest)]):
            self.stores[level].release(digest)
            self.registry.release(digest)
        self.model[(level, digest)] = 0
        assert not self.stores[level].contains(digest)

    @rule(
        level=st.sampled_from([TierLevel.HOST, TierLevel.SSD]),
        idx=st.integers(0, len(DIGESTS) - 1),
    )
    def release_without_put_raises(self, level, idx):
        digest = DIGESTS[idx]
        if self._count(level, digest) == 0:
            with pytest.raises(ChunkAccountingError):
                self.stores[level].release(digest)

    # -- invariants ---------------------------------------------------------
    @invariant()
    def stores_match_model(self):
        for level, store in self.stores.items():
            expected = {
                d: c for (lv, d), c in self.model.items() if lv == level and c > 0
            }
            assert store.refs == expected

    @invariant()
    def held_bytes_never_leak(self):
        for level, store in self.stores.items():
            live = {d for (lv, d), c in self.model.items() if lv == level and c > 0}
            assert store.held_bytes == sum(SIZE_OF[d] for d in live)
            store.check()

    @invariant()
    def registry_agrees_and_has_no_orphans(self):
        totals = {}
        for (_, digest), count in self.model.items():
            if count:
                totals[digest] = totals.get(digest, 0) + count
        assert self.registry.total_refs == totals
        assert not list(self.registry.orphans())


TestChunkStoreMachine = ChunkStoreMachine.TestCase
TestChunkStoreMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
