"""VELOC-like Client facade."""

import pytest

from repro.core.client import Client
from repro.errors import CheckpointNotFound, HintError
from repro.util.rng import make_rng
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


@pytest.fixture
def client(context):
    c = Client.create(context)
    yield c
    c.close()


class TestRegions:
    def test_checkpoint_without_regions_rejected(self, client):
        with pytest.raises(HintError):
            client.checkpoint("x", 0)

    def test_restart_without_regions_rejected(self, client):
        with pytest.raises(HintError):
            client.restart(0)

    def test_region_id_bounds(self, client, context):
        with pytest.raises(HintError):
            client.mem_protect(-1, make_buffer(context, CKPT))
        with pytest.raises(HintError):
            client.mem_protect(1024, make_buffer(context, CKPT))

    def test_unprotect(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.unprotect(1)
        with pytest.raises(HintError):
            client.checkpoint("x", 0)


class TestSingleRegion:
    def test_roundtrip(self, client, context):
        buf = make_buffer(context, CKPT, seed=3)
        expected = buf.checksum()
        client.mem_protect(1, buf)
        client.checkpoint("w", 0)
        buf.fill_random(make_rng(99, "overwrite"))
        client.restart(0)
        assert buf.checksum() == expected

    def test_recover_size(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.checkpoint("w", 0)
        assert client.recover_size(0, 1) == CKPT

    def test_duplicate_version_rejected(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.checkpoint("w", 0)
        with pytest.raises(HintError):
            client.checkpoint("w", 0)

    def test_restart_unknown_version(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        with pytest.raises(CheckpointNotFound):
            client.restart(5)

    def test_blocked_time_returned(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        assert client.checkpoint("w", 0) > 0.0
        assert client.restart(0) > 0.0


class TestMultiRegion:
    def test_two_regions_roundtrip(self, client, context):
        b1 = make_buffer(context, CKPT, seed=1)
        b2 = make_buffer(context, 64 * MiB, seed=2)
        s1, s2 = b1.checksum(), b2.checksum()
        client.mem_protect(1, b1)
        client.mem_protect(2, b2)
        client.checkpoint("w", 0)
        b1.fill_random(make_rng(5, "x"))
        b2.fill_random(make_rng(6, "y"))
        client.restart(0)
        assert b1.checksum() == s1 and b2.checksum() == s2

    def test_regions_have_distinct_sizes(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.mem_protect(2, make_buffer(context, 64 * MiB))
        client.checkpoint("w", 0)
        assert client.recover_size(0, 1) == CKPT
        assert client.recover_size(0, 2) == 64 * MiB


class TestHints:
    def test_listing1_pattern(self, client, context):
        """Hints enqueued before the forward pass (Listing 1)."""
        buf = make_buffer(context, CKPT)
        client.mem_protect(1, buf)
        num = 6
        for v in reversed(range(num)):
            client.prefetch_enqueue(v)
        sums = []
        for v in range(num):
            buf.fill_random(make_rng(v, "fw"))
            sums.append(buf.checksum())
            client.checkpoint("w", v)
        client.prefetch_start()
        for v in reversed(range(num)):
            client.restart(v)
            assert buf.checksum() == sums[v]

    def test_hint_without_regions_rejected(self, client):
        with pytest.raises(HintError):
            client.prefetch_enqueue(0)

    def test_stats_passthrough(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.checkpoint("w", 0)
        assert client.stats()["checkpoints"] == 1

    def test_wait_for_flushes(self, client, context):
        client.mem_protect(1, make_buffer(context, CKPT))
        client.checkpoint("w", 0)
        client.wait_for_flushes()
        assert client.engine.ssd.object_count() == 1
