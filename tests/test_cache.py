"""CacheBuffer: reservation, eviction, payload I/O, safety invariants."""

import threading

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import ScaleModel
from repro.core.cache import CacheBuffer
from repro.core.catalog import CheckpointRecord
from repro.core.lifecycle import CkptState
from repro.core.restore_queue import RestoreQueue
from repro.core.sync import Monitor
from repro.errors import AllocationError, CapacityError
from repro.simgpu.memory import Arena, make_payload
from repro.tiers.base import TierLevel
from repro.util.rng import make_rng
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB, time_scale=0.002)
SLOT = 1 * MiB  # checkpoints are one "slot" = 1 MiB


def make_cache(capacity_slots=4, **kw):
    clock = VirtualClock(time_scale=0.002)
    monitor = Monitor(clock)
    arena = Arena("test", capacity_slots * SLOT, SCALE)
    queue = RestoreQueue()
    cache = CacheBuffer(
        name="test-gpu",
        level=TierLevel.GPU,
        arena=arena,
        monitor=monitor,
        clock=clock,
        restore_queue=queue,
        flush_estimate=lambda n: 0.1,
        **kw,
    )
    return cache


def make_record(ckpt_id, size=SLOT):
    return CheckpointRecord(ckpt_id, size, size, 0)


def fill_flushed(cache, n, start_id=0):
    """Insert n records and walk them to FLUSHED (evictable)."""
    records = []
    for i in range(start_id, start_id + n):
        r = make_record(i)
        assert cache.reserve(r, CkptState.WRITE_IN_PROGRESS) is not None
        inst = r.instance(cache.level)
        inst.transition(CkptState.WRITE_COMPLETE)
        inst.transition(CkptState.FLUSHED)
        r.durable_level = TierLevel.SSD  # copy exists below
        records.append(r)
    return records


class TestReserve:
    def test_reserve_creates_instance(self):
        cache = make_cache()
        r = make_record(1)
        waited = cache.reserve(r, CkptState.WRITE_IN_PROGRESS)
        assert waited == 0.0
        assert cache.contains(r)
        assert r.instance(TierLevel.GPU).state is CkptState.WRITE_IN_PROGRESS

    def test_double_reserve_rejected(self):
        cache = make_cache()
        r = make_record(1)
        cache.reserve(r, CkptState.WRITE_IN_PROGRESS)
        with pytest.raises(AllocationError):
            cache.reserve(r, CkptState.WRITE_IN_PROGRESS)

    def test_capacity_error_for_oversized(self):
        cache = make_cache(capacity_slots=2)
        with pytest.raises(CapacityError):
            cache.reserve(make_record(1, size=3 * SLOT), CkptState.WRITE_IN_PROGRESS)

    def test_eviction_of_flushed_makes_room(self):
        cache = make_cache(capacity_slots=2)
        fill_flushed(cache, 2)
        r = make_record(10)
        waited = cache.reserve(r, CkptState.WRITE_IN_PROGRESS)
        assert waited is not None
        assert cache.contains(r)
        assert cache.evictions >= 1

    def test_nonblocking_fails_when_unevictable(self):
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.WRITE_IN_PROGRESS)  # not evictable
        assert cache.reserve(make_record(2), CkptState.READ_IN_PROGRESS, blocking=False) is None

    def test_blocking_reserve_waits_for_state_change(self):
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.WRITE_IN_PROGRESS)
        r1.durable_level = TierLevel.SSD
        result = {}

        def unblock():
            cache.clock.sleep(2.0)
            with cache.monitor:
                inst = r1.instance(TierLevel.GPU)
                inst.transition(CkptState.WRITE_COMPLETE)
                inst.transition(CkptState.FLUSHED)
                cache.monitor.notify_all()

        t = threading.Thread(target=unblock, daemon=True)
        t.start()
        waited = cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=True)
        t.join()
        assert waited is not None and waited > 0.0

    def test_pinned_not_evicted_without_force(self):
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.READ_IN_PROGRESS)
        r1.instance(TierLevel.GPU).transition(CkptState.READ_COMPLETE)
        r1.durable_level = TierLevel.SSD
        assert cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False) is None

    def test_forced_eviction_of_pinned(self):
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.READ_IN_PROGRESS)
        r1.instance(TierLevel.GPU).transition(CkptState.READ_COMPLETE)
        r1.durable_level = TierLevel.SSD
        waited = cache.reserve(
            make_record(2), CkptState.READ_IN_PROGRESS, blocking=False, allow_pinned=True
        )
        assert waited is not None
        assert cache.forced_evictions == 1
        assert r1.peek(TierLevel.GPU) is None

    def test_only_copy_protected(self):
        """Eviction must never destroy the only copy of unconsumed data."""
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.READ_IN_PROGRESS)
        r1.instance(TierLevel.GPU).transition(CkptState.READ_COMPLETE)
        # no durable level, no other cached copy → forced eviction must fail
        with pytest.raises(AllocationError):
            cache.reserve(
                make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False, allow_pinned=True
            )

    def test_consumed_evictable_without_other_copy(self):
        cache = make_cache(capacity_slots=1)
        r1 = make_record(1)
        cache.reserve(r1, CkptState.READ_IN_PROGRESS)
        inst = r1.instance(TierLevel.GPU)
        inst.transition(CkptState.READ_COMPLETE)
        inst.transition(CkptState.CONSUMED)
        r1.consumed = True
        waited = cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False)
        assert waited is not None

    def test_flush_pending_blocks_eviction(self):
        cache = make_cache(capacity_slots=1)
        (r1,) = fill_flushed(cache, 1)
        r1.instance(TierLevel.GPU).flush_pending = True
        assert cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False) is None
        r1.instance(TierLevel.GPU).flush_pending = False
        assert cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False) is not None

    def test_read_pinned_blocks_eviction(self):
        cache = make_cache(capacity_slots=1)
        (r1,) = fill_flushed(cache, 1)
        r1.instance(TierLevel.GPU).read_pinned = 1
        assert cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False) is None


class TestSplitRegions:
    def test_write_and_prefetch_partitions(self):
        cache = make_cache(capacity_slots=4)
        cache.write_boundary = 2 * SLOT
        w = make_record(1)
        cache.reserve(w, CkptState.WRITE_IN_PROGRESS)
        p = make_record(2)
        cache.reserve(p, CkptState.READ_IN_PROGRESS)
        assert cache.offset_of(w) < 2 * SLOT
        assert cache.offset_of(p) >= 2 * SLOT

    def test_partition_capacity_errors(self):
        cache = make_cache(capacity_slots=4)
        cache.write_boundary = 2 * SLOT
        with pytest.raises(CapacityError):
            cache.reserve(make_record(1, size=3 * SLOT), CkptState.WRITE_IN_PROGRESS)

    def test_write_partition_fills_independently(self):
        cache = make_cache(capacity_slots=4)
        cache.write_boundary = 2 * SLOT
        cache.reserve(make_record(1), CkptState.WRITE_IN_PROGRESS)
        cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS)
        # write half full and unevictable; prefetch half still available
        assert cache.reserve(make_record(3), CkptState.WRITE_IN_PROGRESS, blocking=False) is None
        assert cache.reserve(make_record(4), CkptState.READ_IN_PROGRESS, blocking=False) is not None


class TestPayloadIO:
    def test_roundtrip(self):
        cache = make_cache()
        r = make_record(1)
        cache.reserve(r, CkptState.WRITE_IN_PROGRESS)
        data = make_payload(SLOT, SCALE, make_rng(1, "pay"))
        cache.write_payload(r, data)
        out = cache.read_payload(r)
        assert np.array_equal(out[: data.size], data)

    def test_distinct_records_isolated(self):
        cache = make_cache()
        r1, r2 = make_record(1), make_record(2)
        cache.reserve(r1, CkptState.WRITE_IN_PROGRESS)
        cache.reserve(r2, CkptState.WRITE_IN_PROGRESS)
        d1 = make_payload(SLOT, SCALE, make_rng(1, "a"))
        d2 = make_payload(SLOT, SCALE, make_rng(1, "b"))
        cache.write_payload(r1, d1)
        cache.write_payload(r2, d2)
        assert np.array_equal(cache.read_payload(r1)[: d1.size], d1)
        assert np.array_equal(cache.read_payload(r2)[: d2.size], d2)

    def test_read_after_evict_raises(self):
        cache = make_cache()
        (r1,) = fill_flushed(cache, 1)
        cache.evict(r1)
        with pytest.raises(AllocationError):
            cache.read_payload(r1)


class TestStatsAndHelpers:
    def test_pinned_bytes(self):
        cache = make_cache()
        r = make_record(1)
        cache.reserve(r, CkptState.READ_IN_PROGRESS)
        assert cache.pinned_bytes() == SLOT
        r.instance(TierLevel.GPU).transition(CkptState.READ_COMPLETE)
        assert cache.pinned_bytes() == SLOT
        r.instance(TierLevel.GPU).transition(CkptState.CONSUMED)
        assert cache.pinned_bytes() == 0

    def test_occupancy(self):
        cache = make_cache(capacity_slots=4)
        assert cache.occupancy() == 0.0
        cache.reserve(make_record(1), CkptState.WRITE_IN_PROGRESS)
        assert cache.occupancy() == pytest.approx(0.25)

    def test_explicit_evict_noop_when_absent(self):
        cache = make_cache()
        cache.evict(make_record(1))  # not cached: no error

    def test_usable_capacity_limits_placement(self):
        cache = make_cache(capacity_slots=4, usable_capacity=lambda: 1 * SLOT)
        assert cache.reserve(make_record(1), CkptState.WRITE_IN_PROGRESS, blocking=False) is not None
        assert cache.reserve(make_record(2), CkptState.WRITE_IN_PROGRESS, blocking=False) is None
