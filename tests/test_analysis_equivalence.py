"""``AnalysisConfig.enabled=False`` changes nothing — the same discipline
as ``SchedConfig`` / ``ReduceConfig`` / ``FaultConfig``.

The causal plumbing (op handles on checkpoint records, ``op=`` parameters
through the scheduler and flush FSM, the ``tier=`` span args, the SLO
monitor) must be invisible when the switch is off: the tracer hands out
``NULL_OP``, no fill/stage events are emitted, no event carries an
``op_id``/``parent_id``/``category``, and the runtime's decisions are
bit-identical to the pre-causal build.  Same scenario discipline as
``test_faults_equivalence``: serialized cascade, deterministic restore
order, timestamps excluded (wall jitter feeds the virtual clock).
"""

import json

from repro.config import AnalysisConfig, SloConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import tiny_config

CKPT = 128 * MiB
VERSIONS = 12


def _run_scenario(analysis_cfg):
    cfg = tiny_config(telemetry=True)
    if analysis_cfg is not None:
        cfg = cfg.with_(analysis=analysis_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            # The gates under test: tracer off, no live SLO monitor.
            assert not engine.ops.enabled
            assert engine.slo is None
            sums = {}
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(CKPT)
                buf.fill_random(make_rng(v, "analysis-equiv"))
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, VERSIONS, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            events = cluster.telemetry.bus.snapshot()
            # Causal silence: not one event may carry an op id, a parent
            # link, or an attribution category.
            assert all(
                e.op_id is None and e.parent_id is None and e.category is None
                for e in events
            )
            # Nor may the causal layer's own span names appear.
            names = {e.name for e in events}
            assert not names & {"wait", "flush-queue", "durable", "slo-breach"}
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in events
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            durable = {
                v: (
                    engine.catalog.get(v).durable_level.name
                    if engine.catalog.get(v).durable_level is not None
                    else None
                )
                for v in range(VERSIONS)
            }
            return decisions, layouts, tier_bytes, durable, restored


def test_disabled_analysis_is_bit_identical():
    default = _run_scenario(None)
    # Every non-default SLO knob set; enabled=False must make it all inert.
    off = _run_scenario(
        AnalysisConfig(
            enabled=False,
            slo=SloConfig(
                durability_target_s=0.01,
                restore_target_s=0.01,
                objective=0.5,
                window_s=1.0,
                burn_rate_threshold=0.1,
                min_samples=1,
            ),
        )
    )
    for got, want in zip(off, default):
        assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
            want, sort_keys=True, default=str
        )
    decisions, _, _, durable, _ = default
    assert len(decisions) > 0  # the scenario must actually exercise eviction
    assert any(level is not None for level in durable.values())
