"""Failure injection: the runtime must degrade cleanly, not corrupt."""

import threading

import numpy as np
import pytest

from repro.core.engine import ScoreEngine
from repro.core.sync import Monitor
from repro.clock import VirtualClock
from repro.errors import CheckpointNotFound, TransferError
from repro.tiers.base import TierLevel
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


class FlakySsd:
    """Wraps an SsdStore; fails the first N put() calls."""

    def __init__(self, inner, failures):
        self._inner = inner
        self._failures = failures
        self._lock = threading.Lock()
        self.put_attempts = 0

    def put(self, key, payload, nominal_size, **kw):
        with self._lock:
            self.put_attempts += 1
            if self._failures > 0:
                self._failures -= 1
                raise TransferError("injected SSD write failure")
        return self._inner.put(key, payload, nominal_size, **kw)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestSsdWriteFailures:
    def test_failed_flush_abandoned_but_data_still_cached(self, context):
        engine = ScoreEngine(context)
        flaky = FlakySsd(engine.ssd, failures=1)
        engine.ssd = flaky
        try:
            buf = make_buffer(context, CKPT, seed=1)
            expected = buf.checksum()
            engine.checkpoint(0, buf)
            engine.wait_for_flushes()
            # The h2f leg failed: checkpoint not durable, flush abandoned.
            record = engine.catalog.get(0)
            assert record.durable_level is None
            assert engine.flusher.abandoned >= 1
            # But the cached copy still serves the restore correctly.
            out = context.device.alloc_buffer(CKPT)
            engine.restore(0, out)
            assert out.checksum() == expected
        finally:
            engine.close()

    def test_later_checkpoints_unaffected(self, context):
        engine = ScoreEngine(context)
        engine.ssd = FlakySsd(engine.ssd, failures=1)
        try:
            for v in range(3):
                engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
            engine.wait_for_flushes()
            durable = [
                engine.catalog.get(v).durable_level is TierLevel.SSD for v in range(3)
            ]
            assert durable.count(True) == 2  # exactly the injected failure lost
        finally:
            engine.close()


class TestStoreCorruptionPaths:
    def test_missing_ssd_object_surfaces(self, engine, context):
        """Deleting the only durable copy makes a later demand fetch fail
        loudly (CheckpointNotFound), never silently."""
        for v in range(24):  # push v0 out of both caches
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        record = engine.catalog.get(0)
        if record.fastest_cached_level() is None:  # truly SSD-only
            engine.ssd.delete(engine.store_key(record))
            with pytest.raises(CheckpointNotFound):
                # the demand promotion hits the missing object
                engine.promote_once(
                    record, TierLevel.SSD, TierLevel.HOST, blocking=True, allow_pinned=True
                )


class TestMonitorBasics:
    def test_wait_for_timeout_in_virtual_units(self):
        clock = VirtualClock(time_scale=0.002)
        mon = Monitor(clock)
        with mon:
            before = clock.now()
            ok = mon.wait_for(lambda: False, virtual_timeout=1.0)
            elapsed = clock.now() - before
        assert not ok
        assert elapsed >= 1.0

    def test_reentrant(self):
        mon = Monitor(VirtualClock(time_scale=0.002))
        with mon:
            with mon:  # RLock: no deadlock
                mon.notify_all()


class TestPayloadEdgeCases:
    def test_smallest_possible_checkpoint(self, engine, context):
        size = context.scale.alignment  # one allocation unit
        buf = context.device.alloc_buffer(size)
        buf.payload[:] = 7
        engine.checkpoint(0, buf)
        out = context.device.alloc_buffer(size)
        engine.restore(0, out)
        assert np.array_equal(out.payload, buf.payload)

    def test_checkpoint_exactly_cache_sized(self, engine, context):
        size = engine.gpu_cache.table.capacity  # fills the GPU cache alone
        buf = context.device.alloc_buffer(size)
        buf.payload[:] = 9
        engine.checkpoint(0, buf)
        engine.wait_for_flushes()
        out = context.device.alloc_buffer(size)
        engine.restore(0, out)
        assert np.array_equal(out.payload, buf.payload)

    def test_mixed_sizes_sequence(self, engine, context):
        sizes = [context.scale.alignment, 64 * MiB, CKPT, 32 * MiB, 256 * MiB]
        sums = {}
        for v, size in enumerate(sizes):
            buf = make_buffer(context, size, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes()
        for v, size in enumerate(sizes):
            out = context.device.alloc_buffer(size)
            engine.restore(v, out)
            assert out.checksum() == sums[v]
