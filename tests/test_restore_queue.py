"""Restore-order hint queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.restore_queue import RestoreQueue
from repro.errors import HintError


class TestEnqueue:
    def test_head_and_upcoming(self):
        q = RestoreQueue()
        for v in (3, 1, 2):
            q.enqueue(v)
        assert q.head() == 3
        assert q.upcoming(2) == [3, 1]
        assert q.upcoming(10) == [3, 1, 2]

    def test_duplicate_hint_rejected(self):
        q = RestoreQueue()
        q.enqueue(1)
        with pytest.raises(HintError):
            q.enqueue(1)

    def test_empty_head_is_none(self):
        assert RestoreQueue().head() is None

    def test_start_flag(self):
        q = RestoreQueue()
        assert not q.started
        q.start()
        assert q.started

    def test_len_counts_unconsumed(self):
        q = RestoreQueue()
        for v in range(5):
            q.enqueue(v)
        assert len(q) == 5
        q.consume(0)
        q.consume(3)
        assert len(q) == 3


class TestDistance:
    def test_distance_from_head(self):
        q = RestoreQueue()
        for v in (10, 20, 30):
            q.enqueue(v)
        assert q.distance(10) == 0
        assert q.distance(20) == 1
        assert q.distance(30) == 2

    def test_unhinted_distance_is_none(self):
        q = RestoreQueue()
        q.enqueue(1)
        assert q.distance(99) is None

    def test_consumed_distance_is_none(self):
        q = RestoreQueue()
        q.enqueue(1)
        q.consume(1)
        assert q.distance(1) is None

    def test_distance_skips_consumed_between(self):
        q = RestoreQueue()
        for v in (1, 2, 3, 4):
            q.enqueue(v)
        q.consume(2)  # out-of-order consumption (deviation)
        assert q.distance(1) == 0
        assert q.distance(3) == 1
        assert q.distance(4) == 2

    def test_is_hinted(self):
        q = RestoreQueue()
        q.enqueue(1)
        assert q.is_hinted(1)
        assert not q.is_hinted(2)
        q.consume(1)
        assert not q.is_hinted(1)


class TestConsume:
    def test_consume_advances_head(self):
        q = RestoreQueue()
        for v in (1, 2, 3):
            q.enqueue(v)
        q.consume(1)
        assert q.head() == 2

    def test_out_of_order_consumption(self):
        q = RestoreQueue()
        for v in (1, 2, 3):
            q.enqueue(v)
        q.consume(2)
        assert q.head() == 1
        q.consume(1)
        assert q.head() == 3

    def test_double_consume_rejected(self):
        q = RestoreQueue()
        q.enqueue(1)
        q.consume(1)
        with pytest.raises(HintError):
            q.consume(1)

    def test_unhinted_consume_tolerated(self):
        q = RestoreQueue()
        q.enqueue(1)
        q.consume(99)  # deviation from hints: no error
        assert q.head() == 1

    def test_interleaved_enqueue_consume(self):
        q = RestoreQueue()
        q.enqueue(1)
        q.consume(1)
        q.enqueue(2)
        assert q.head() == 2
        assert q.distance(2) == 0


class TestEdgeCases:
    """Hint-protocol corners: late hints, duplicate versions, hintless
    demand reads."""

    def test_enqueue_after_start(self):
        # Prefetch_start is a gate, not a freeze: hints keep arriving after
        # it and append past every existing entry.
        q = RestoreQueue()
        q.enqueue(1)
        q.start()
        q.enqueue(2)
        q.enqueue(3)
        assert q.started
        assert q.upcoming(10) == [1, 2, 3]
        assert q.distance(3) == 2

    def test_enqueue_after_start_on_empty_queue(self):
        q = RestoreQueue()
        q.start()
        assert q.head() is None
        q.enqueue(7)
        assert q.head() == 7
        assert q.distance(7) == 0

    def test_rehint_of_consumed_version_rejected(self):
        # Hints cannot be revoked or repeated — a version stays hinted
        # forever, even once consumed.
        q = RestoreQueue()
        q.enqueue(1)
        q.consume(1)
        with pytest.raises(HintError):
            q.enqueue(1)

    def test_failed_duplicate_hint_leaves_queue_intact(self):
        q = RestoreQueue()
        for v in (1, 2):
            q.enqueue(v)
        version = q.version
        with pytest.raises(HintError):
            q.enqueue(1)
        assert q.version == version  # the failed enqueue changed nothing
        assert q.upcoming(10) == [1, 2]
        assert len(q) == 2

    def test_empty_hint_demand_reads_count_as_deviations(self):
        # Restores with no hints at all are pure demand reads: tolerated,
        # counted as deviations, and the queue stays empty and usable.
        from repro.telemetry import Telemetry

        telemetry = Telemetry.disabled()
        q = RestoreQueue(telemetry=telemetry)
        deviations = telemetry.registry.counter("hints.deviations")
        q.consume(5)
        q.consume(6)
        assert deviations.value == 2
        assert q.head() is None
        assert len(q) == 0
        q.enqueue(7)  # queue still works after hintless consumption
        assert q.head() == 7

    def test_consumed_before_hinted_demand_read(self):
        # A demand read of a version hinted *later* still rejects the late
        # hint (consumption is permanent per version).
        q = RestoreQueue()
        q.consume(5)
        with pytest.raises(HintError):
            q.enqueue(5)


class TestProperties:
    @given(st.permutations(list(range(12))))
    @settings(max_examples=50, deadline=None)
    def test_distance_matches_naive(self, consume_order):
        q = RestoreQueue()
        for v in range(12):
            q.enqueue(v)
        remaining = list(range(12))
        for v in consume_order:
            # distance must equal the index among remaining hints
            for other in remaining:
                assert q.distance(other) == remaining.index(other)
            q.consume(v)
            remaining.remove(v)
        assert q.head() is None
