"""Model-based (hypothesis stateful) test of the CacheBuffer.

A random interleaving of reserves, state transitions, consumptions and
evictions is replayed against a simple reference model; after every rule
the allocation-table invariants and the model agreement are checked.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.clock import VirtualClock
from repro.config import ScaleModel
from repro.core.cache import CacheBuffer
from repro.core.catalog import CheckpointRecord
from repro.core.lifecycle import CkptState
from repro.core.restore_queue import RestoreQueue
from repro.core.sync import Monitor
from repro.errors import AllocationError
from repro.simgpu.memory import Arena
from repro.tiers.base import TierLevel
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB, time_scale=0.002)
SLOT = 1 * MiB
CAPACITY_SLOTS = 6


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        clock = VirtualClock(time_scale=0.002)
        self.cache = CacheBuffer(
            name="model",
            level=TierLevel.GPU,
            arena=Arena("model", CAPACITY_SLOTS * SLOT, SCALE),
            monitor=Monitor(clock),
            clock=clock,
            restore_queue=RestoreQueue(),
            flush_estimate=lambda n: 0.05,
        )
        self.records = {}  # ckpt_id -> record
        self.cached = set()  # model: ids the cache should contain
        self.next_id = 0

    # -- rules -------------------------------------------------------------
    def _snapshot_unevictable(self):
        out = set()
        for ckpt_id in self.cached:
            inst = self.records[ckpt_id].peek(TierLevel.GPU)
            if inst is not None and not (inst.evictable and not inst.flush_pending):
                out.add(ckpt_id)
        return out

    def _reconcile_after_reserve(self, unevictable_before):
        """reserve() may auto-evict evictable extents; sync the model and
        assert that nothing unevictable was reclaimed."""
        with self.cache.monitor:
            table_ids = {
                f.record.ckpt_id for f in self.cache.table.fragments() if not f.is_gap
            }
        evicted = self.cached - table_ids
        assert not (evicted & unevictable_before), (
            f"unevictable extents were reclaimed: {evicted & unevictable_before}"
        )
        for ckpt_id in evicted:
            assert self.records[ckpt_id].peek(TierLevel.GPU) is None
        self.cached -= evicted

    @rule(size_slots=st.integers(1, 3))
    def reserve_write(self, size_slots):
        record = CheckpointRecord(self.next_id, size_slots * SLOT, size_slots * SLOT, 0)
        self.next_id += 1
        record.durable_level = TierLevel.SSD  # copies always exist below
        unevictable = self._snapshot_unevictable()
        got = self.cache.reserve(record, CkptState.WRITE_IN_PROGRESS, blocking=False)
        self._reconcile_after_reserve(unevictable)
        if got is not None:
            self.records[record.ckpt_id] = record
            self.cached.add(record.ckpt_id)

    @precondition(lambda self: self.cached)
    @rule(data=st.data())
    def advance_state(self, data):
        ckpt_id = data.draw(st.sampled_from(sorted(self.cached)))
        inst = self.records[ckpt_id].instance(TierLevel.GPU)
        next_states = {
            CkptState.WRITE_IN_PROGRESS: CkptState.WRITE_COMPLETE,
            CkptState.WRITE_COMPLETE: CkptState.FLUSHED,
            CkptState.FLUSHED: CkptState.CONSUMED,
        }
        nxt = next_states.get(inst.state)
        if nxt is not None:
            with self.cache.monitor:
                inst.transition(nxt)
                if nxt is CkptState.CONSUMED:
                    self.records[ckpt_id].consumed = True
                self.cache.monitor.notify_all()

    @precondition(lambda self: self.cached)
    @rule(data=st.data())
    def explicit_evict(self, data):
        ckpt_id = data.draw(st.sampled_from(sorted(self.cached)))
        record = self.records[ckpt_id]
        inst = record.peek(TierLevel.GPU)
        if inst is not None and inst.evictable:
            self.cache.evict(record)
            self.cached.discard(ckpt_id)

    @rule()
    def double_reserve_rejected(self):
        for ckpt_id in sorted(self.cached):
            record = self.records[ckpt_id]
            try:
                self.cache.reserve(record, CkptState.WRITE_IN_PROGRESS, blocking=False)
            except AllocationError:
                return  # expected
            raise AssertionError("double reserve must raise")

    # -- invariants -----------------------------------------------------------
    @invariant()
    def table_invariants_hold(self):
        with self.cache.monitor:
            self.cache.table.check_invariants()

    @invariant()
    def model_agrees(self):
        with self.cache.monitor:
            table_ids = {
                f.record.ckpt_id for f in self.cache.table.fragments() if not f.is_gap
            }
        assert table_ids == self.cached

    @invariant()
    def capacity_never_exceeded(self):
        with self.cache.monitor:
            assert self.cache.table.used_bytes <= self.cache.table.capacity


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
