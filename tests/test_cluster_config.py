"""ClusterConfig validation: every knob rejects nonsense with ConfigError."""

import pytest

from repro.config import ClusterConfig, FaultConfig, RuntimeConfig
from repro.errors import ConfigError


@pytest.mark.parametrize(
    "kwargs",
    [
        {"replica_factor": 0},
        {"replica_factor": -1},
        {"peer_bandwidth": 0.0},
        {"peer_bandwidth": -1e9},
        {"aggregation_window_s": -0.001},
        {"aggregation_max_ops": 0},
        {"aggregation_max_bytes": 0},
        {"aggregation_max_bytes": -1},
        {"service_max_sessions": 0},
        {"service_queue_depth": 0},
        {"service_rpc_latency_s": -1e-6},
        {"repair_interval_s": 0.0},
        {"repair_interval_s": -0.01},
        {"repair_class": "BULK"},
        {"repair_max_inflight": 0},
    ],
)
def test_bad_knobs_raise(kwargs):
    with pytest.raises(ConfigError):
        ClusterConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"node_crashes": ((0, 1.0),)},  # missing mode
        {"node_crashes": ((0, 1.0, "brownout"),)},  # unknown mode
        {"node_crashes": ((-1, 1.0, "fail-stop"),)},
        {"node_crashes": ((0, -1.0, "fail-stop"),)},
        {"node_rejoins": ((0,),)},
        {"node_rejoins": ((-1, 1.0),)},
        {"partitions": ((0, 0, 1.0, 2.0),)},  # same node twice
        {"partitions": ((0, 1, 2.0, 1.0),)},  # end before start
        {"partitions": ((0, 1, -1.0, 2.0),)},
    ],
)
def test_bad_node_chaos_entries_raise(kwargs):
    with pytest.raises(ConfigError):
        FaultConfig(enabled=True, **kwargs)


def test_node_chaos_ids_validated_against_node_count():
    with pytest.raises(ConfigError):
        RuntimeConfig(
            num_nodes=2,
            cluster=ClusterConfig(enabled=True),
            faults=FaultConfig(enabled=True, node_crashes=((5, 1.0, "fail-stop"),)),
        )
    # In range is fine.
    RuntimeConfig(
        num_nodes=2,
        cluster=ClusterConfig(enabled=True),
        faults=FaultConfig(enabled=True, node_crashes=((1, 1.0, "fail-stop"),)),
    )


def test_defaults_validate():
    ClusterConfig()
    ClusterConfig(enabled=True)


def test_replica_factor_cannot_exceed_node_count_when_enabled():
    with pytest.raises(ConfigError, match="replica_factor"):
        RuntimeConfig(
            num_nodes=2, cluster=ClusterConfig(enabled=True, replica_factor=3)
        )


def test_replica_factor_unchecked_when_disabled():
    RuntimeConfig(num_nodes=2, cluster=ClusterConfig(enabled=False, replica_factor=3))


def test_peer_bandwidth_none_is_valid():
    ClusterConfig(peer_bandwidth=None)
