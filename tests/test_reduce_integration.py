"""End-to-end reduction: enabled-mode correctness across the tier cascade."""

import pytest

from repro.config import ReduceConfig
from repro.core.engine import ScoreEngine
from repro.core.validator import validate_engine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import uniform_trace
from repro.workloads.shot import HintMode, ShotSpec, run_shot
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB


@pytest.mark.parametrize("site", ["gpu", "host"])
def test_restores_byte_identical_under_churn(site):
    """2.5 GiB through 0.5+2 GiB caches: reduced checkpoints survive
    eviction to SSD/PFS and restore byte-for-byte (CRC verified by the
    engine) with the validator's refcount invariants holding throughout."""
    cfg = tiny_config(reduce=ReduceConfig(enabled=True, site=site))
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            sums = {}
            for v in range(20):
                buf = make_buffer(ctx, CKPT, seed=v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
            engine.wait_for_flushes(timeout=600.0)
            validate_engine(engine)
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, 20, seed=2):
                engine.restore(v, out)
                assert out.checksum() == sums[v], f"{site}: corruption at {v}"
            validate_engine(engine)
            stats = engine.stats()["reduction"]
            assert stats["encodes"] == 20
            assert stats["physical_bytes"] < stats["logical_bytes"]


def test_similar_payloads_dedup_and_shrink_tier_traffic():
    cfg = tiny_config(reduce=ReduceConfig(enabled=True), telemetry=True)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        trace = uniform_trace(cfg.scale, num_snapshots=24)
        spec = ShotSpec(
            trace=trace,
            restore_order=restore_order(RestoreOrder.REVERSE, 24),
            hint_mode=HintMode.ALL,
            wait_for_flush=True,
            similarity=0.9,
            seed=5,
        )
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            result = run_shot(engine, spec)
            validate_engine(engine)
            stats = result.engine_stats["reduction"]
            chunks = (
                stats["new_chunks"] + stats["dup_chunks"] + stats["delta_chunks"]
            )
            assert stats["dup_chunks"] / chunks > 0.5  # similarity drives dedup
            registry = cluster.telemetry.registry
            logical = trace.total_bytes
            assert registry.counter("tier.ssd.write_bytes").value < logical
            assert registry.counter("tier.pfs.write_bytes").value < logical


def test_gpudirect_forces_gpu_site():
    """GPUDirect has no host staging, so a host-site config must fall back
    to device-side encoding and still restore correctly."""
    cfg = tiny_config(reduce=ReduceConfig(enabled=True, site="host"))
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, gpudirect=True, flush_to_pfs=True) as engine:
            assert engine.reducer.site == "gpu"
            sums = {}
            for v in range(8):
                buf = make_buffer(ctx, CKPT, seed=100 + v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
            engine.wait_for_flushes(timeout=600.0)
            validate_engine(engine)
            out = ctx.device.alloc_buffer(CKPT)
            for v in reversed(range(8)):
                engine.restore(v, out)
                assert out.checksum() == sums[v]


def test_recovery_skips_reduced_blobs():
    """Reduced SSD/PFS blobs are placeholders whose recipe dies with the
    reducer; a fresh engine must skip them instead of restoring zeros.
    (With resilience enabled the recipe survives in the durable sidecar and
    recovery works — see ``test_recovery_restores_reduced_checkpoints``.)"""
    cfg = tiny_config(reduce=ReduceConfig(enabled=True))
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        engine = ScoreEngine(ctx)
        for v in range(4):
            engine.checkpoint(v, make_buffer(ctx, CKPT, seed=v))
        engine.wait_for_flushes(timeout=600.0)
        engine.close()
        reborn = ScoreEngine(ctx)
        try:
            assert reborn.recover_history() == 0
        finally:
            reborn.close()


def test_recovery_restores_reduced_checkpoints():
    """With resilience on, the chunk-recipe sidecar outlives the engine:
    a re-incarnated process rebuilds each ReducedImage from its recipe and
    restores the full logical bytes, CRC-verified."""
    from repro.config import ResilienceConfig

    cfg = tiny_config(
        reduce=ReduceConfig(enabled=True),
        resilience=ResilienceConfig(enabled=True),
    )
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        engine = ScoreEngine(ctx, flush_to_pfs=True)
        sums = {}
        for v in range(4):
            buf = make_buffer(ctx, CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes(timeout=600.0)
        engine.close()
        reborn = ScoreEngine(ctx, flush_to_pfs=True)
        try:
            assert reborn.recover_history() == 4
            out = ctx.device.alloc_buffer(CKPT)
            for v in range(4):
                record = reborn.catalog.get(v)
                assert record.reduction is not None  # rebuilt from the recipe
                reborn.restore(v, out)
                assert out.checksum() == sums[v]
            validate_engine(reborn)
        finally:
            reborn.close()


def test_recovery_restores_reduced_checkpoints_across_clusters(tmp_path):
    """Full restart with a file-backed SSD tier: blobs, manifest journal
    and chunk recipes all re-index from disk in a brand-new cluster."""
    from repro.config import ResilienceConfig

    cfg = tiny_config(
        reduce=ReduceConfig(enabled=True),
        resilience=ResilienceConfig(enabled=True),
        ssd_directory=str(tmp_path),
    )
    sums = {}
    with Cluster(cfg) as c1:
        ctx = c1.process_contexts()[0]
        with ScoreEngine(ctx) as engine:
            for v in range(4):
                buf = make_buffer(ctx, CKPT, seed=v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
            engine.wait_for_flushes(timeout=600.0)
        assert c1.journal.commits >= 4
    with Cluster(cfg) as c2:
        ctx = c2.process_contexts()[0]
        assert c2.journal.entries_for(0)  # replayed from journal.jsonl
        with ScoreEngine(ctx) as engine:
            assert engine.recover_history() == 4
            out = ctx.device.alloc_buffer(CKPT)
            for v in range(4):
                engine.restore(v, out)
                assert out.checksum() == sums[v]
            validate_engine(engine)


def test_unreduced_history_still_recovers():
    cfg = tiny_config()
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        engine = ScoreEngine(ctx)
        sums = {}
        for v in range(4):
            buf = make_buffer(ctx, CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes(timeout=600.0)
        engine.close()
        reborn = ScoreEngine(ctx)
        try:
            assert reborn.recover_history() == 4
            out = ctx.device.alloc_buffer(CKPT)
            for v in range(4):
                reborn.restore(v, out)
                assert out.checksum() == sums[v]
        finally:
            reborn.close()


def test_trace_cli_reduce_flag(tmp_path):
    from repro.telemetry.cli import run_trace

    out = run_trace(
        "quickstart", out_dir=str(tmp_path), snapshots=8, processes=1, reduce=True
    )
    assert "reduce" in out
    report = out["reduce_rendered"]
    assert "dedup hit rate" in report
    with open(out["reduce"]) as fh:
        assert fh.read().strip() == report.strip()


def test_prefetch_budget_counts_physical_bytes():
    """With reduction on, the prefetch budget admits more (smaller)
    checkpoints than the logical sizes would allow — exercised simply by
    hinted restores completing under tight caches."""
    cfg = tiny_config(reduce=ReduceConfig(enabled=True))
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        trace = uniform_trace(cfg.scale, num_snapshots=16)
        spec = ShotSpec(
            trace=trace,
            restore_order=restore_order(RestoreOrder.REVERSE, 16),
            hint_mode=HintMode.ALL,
            wait_for_flush=True,
            similarity=0.8,
            seed=9,
        )
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            run_shot(engine, spec)
            validate_engine(engine)
