"""GPUDirect storage mode (the paper's future-work extension)."""

import pytest

from repro.core.engine import ScoreEngine
from repro.core.lifecycle import CkptState
from repro.tiers.base import TierLevel
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


@pytest.fixture
def gds_engine(context):
    eng = ScoreEngine(context, gpudirect=True)
    yield eng
    eng.close()


def test_flush_bypasses_host_cache(gds_engine, context):
    gds_engine.checkpoint(0, make_buffer(context, CKPT))
    gds_engine.wait_for_flushes()
    record = gds_engine.catalog.get(0)
    assert record.durable_level is TierLevel.SSD
    assert record.peek(TierLevel.GPU).state is CkptState.FLUSHED
    assert record.peek(TierLevel.HOST) is None  # never staged through host
    assert gds_engine.host_cache.table.used_bytes == 0


def test_restore_reads_storage_directly(gds_engine, context):
    sums = {}
    for v in range(8):  # exceeds the 4-slot GPU cache
        buf = make_buffer(context, CKPT, seed=v)
        sums[v] = buf.checksum()
        gds_engine.checkpoint(v, buf)
    gds_engine.wait_for_flushes()
    out = context.device.alloc_buffer(CKPT)
    for v in range(8):
        gds_engine.restore(v, out)
        assert out.checksum() == sums[v]
    assert gds_engine.host_cache.table.used_bytes == 0


def test_prefetch_works_with_gpudirect(gds_engine, context):
    for v in range(8):
        gds_engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
    gds_engine.wait_for_flushes()
    for v in range(8):
        gds_engine.prefetch_enqueue(v)
    gds_engine.prefetch_start()
    out = context.device.alloc_buffer(CKPT)
    for v in range(8):
        gds_engine.clock.sleep(0.3)
        gds_engine.restore(v, out)
    sources = {e.source_level for e in gds_engine.recorder.restores()}
    assert sources <= {"GPU", "SSD"}  # host tier never serves


def test_gpudirect_history_roundtrip_reverse(gds_engine, context):
    sums = {}
    for v in range(12):
        buf = make_buffer(context, CKPT, seed=v)
        sums[v] = buf.checksum()
        gds_engine.checkpoint(v, buf)
    gds_engine.wait_for_flushes()
    out = context.device.alloc_buffer(CKPT)
    for v in reversed(range(12)):
        gds_engine.restore(v, out)
        assert out.checksum() == sums[v]
