"""CLI error handling: ``repro trace`` / ``repro analyze`` exit cleanly.

A typo'd workload name or a malformed ``--outage`` spec must die as an
argparse usage error (exit code 2, message on stderr) — never as a raw
``ConfigError``/``FileNotFoundError`` traceback.  The happy paths are
exercised too, off a saved event log so no live run is needed.
"""

import json

import pytest

from repro.analysis import cli as analysis_cli
from repro.telemetry import cli as trace_cli
from repro.telemetry.exporters import write_jsonl

from tests.test_analysis import scenario_events


# -- repro trace --------------------------------------------------------------
def test_trace_unknown_workload_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        trace_cli.main(["nosuch"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_trace_run_trace_raises_config_error_for_unknown_workload(tmp_path):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown workload"):
        trace_cli.run_trace("nosuch", out_dir=str(tmp_path))


@pytest.mark.parametrize(
    "spec",
    [
        "bogus",  # not tier:start:end
        "nvme:0:5",  # unknown tier
        "ssd:five:10",  # non-numeric window
        "ssd:10:5",  # start >= end
        "ssd:0:5:1.5",  # factor out of [0, 1)
    ],
)
def test_trace_malformed_outage_exits_2(spec, capsys):
    with pytest.raises(SystemExit) as exc:
        trace_cli.main(["quickstart", "--outage", spec])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage" in err or "error" in err


# -- repro analyze ------------------------------------------------------------
def test_analyze_unknown_workload_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        analysis_cli.main(["nosuch", "--out-dir", str(tmp_path)])
    assert exc.value.code == 2
    assert "unknown workload" in capsys.readouterr().err


def test_analyze_missing_jsonl_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        analysis_cli.main([str(tmp_path / "absent.events.jsonl")])
    assert exc.value.code == 2
    assert "cannot read" in capsys.readouterr().err


def test_analyze_bad_slo_flag_exits_2(tmp_path, capsys):
    jsonl = tmp_path / "run.events.jsonl"
    write_jsonl(str(jsonl), scenario_events())
    with pytest.raises(SystemExit) as exc:
        analysis_cli.main([str(jsonl), "--slo-objective", "1.5"])
    assert exc.value.code == 2
    assert "objective" in capsys.readouterr().err


def test_analyze_saved_log_passes_accounting_gate(tmp_path, capsys):
    jsonl = tmp_path / "run.events.jsonl"
    write_jsonl(str(jsonl), scenario_events())
    out_json = tmp_path / "report.json"
    code = analysis_cli.main(
        [str(jsonl), "--check-accounting", "95", "--json", str(out_json)]
    )
    assert code == 0
    assert "accounting check passed" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    assert payload["report"]["accounting"]["orphans"] == 0


def test_analyze_diff_between_saved_logs(tmp_path, capsys):
    base = tmp_path / "base.events.jsonl"
    cand = tmp_path / "cand.events.jsonl"
    write_jsonl(str(base), scenario_events(slow=False))
    write_jsonl(str(cand), scenario_events(slow=True))
    out_json = tmp_path / "diff.json"
    code = analysis_cli.main([str(cand), "--diff", str(base), "--json", str(out_json)])
    assert code == 0
    assert "regression vs" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    top = payload["diff"]["top_regressions"][0]
    assert top["delta_s"] > 0
