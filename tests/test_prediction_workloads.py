"""Serving (kvcache) and binomial-checkpointing (revolve) workloads, plus
the demand-join regression: a demand restore must piggyback on an
in-flight speculative prefetch instead of issuing a duplicate SSD read."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.config import CacheConfig, HardwareSpec, PredictConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.units import MiB
from repro.workloads.kvcache import (
    KvCacheSpec,
    generate_kvcache_schedule,
    oracle_restore_order,
    run_kvcache,
)
from repro.workloads.revolve import (
    RevolveSpec,
    materialize,
    min_forward_steps,
    revolve_schedule,
    run_revolve,
)
from tests.conftest import tiny_config


# -- revolve schedule generation ----------------------------------------------
class TestRevolveSchedule:
    def test_quadratic_tail_closed_form(self):
        for n in range(1, 12):
            assert min_forward_steps(n, 0) == n * (n - 1) // 2

    @pytest.mark.parametrize("steps,snapshots", [(6, 2), (12, 3), (24, 4), (17, 3)])
    def test_recomputed_steps_match_recurrence(self, steps, snapshots):
        actions = revolve_schedule(steps, snapshots)
        advances = sum(a[2] - a[1] for a in actions if a[0] == "advance")
        # The initial forward pass is the application's own; the schedule
        # only recomputes, so its advance total is exactly W.
        assert advances == min_forward_steps(steps, snapshots - 1)

    @pytest.mark.parametrize("steps,snapshots", [(6, 2), (12, 3), (24, 4)])
    def test_adjoints_reverse_every_step(self, steps, snapshots):
        actions = revolve_schedule(steps, snapshots)
        adjoints = [a[1] for a in actions if a[0] == "adjoint"]
        assert adjoints == list(range(steps - 1, -1, -1))

    @pytest.mark.parametrize("steps,snapshots", [(6, 2), (12, 3), (24, 4), (17, 3)])
    def test_storage_never_exceeds_snapshots(self, steps, snapshots):
        ops = materialize(revolve_schedule(steps, snapshots))
        live = set()
        max_live = 0
        for op in ops:
            if op[0] == "checkpoint":
                assert op[1] not in live
                live.add(op[1])
            elif op[0] == "restore":
                assert op[1] in live  # created earlier, not yet consumed
                live.remove(op[1])
                if op[3] is not None:
                    live.add(op[3])
            max_live = max(max_live, len(live))
        assert max_live <= snapshots
        assert not live  # every stored state is eventually consumed

    def test_restore_order_is_not_lifo(self):
        # The classic stress: a stored state is revisited *after* states
        # checkpointed later — impossible under a pure stack discipline.
        ops = materialize(revolve_schedule(24, 4))
        order = [op[1] for op in ops if op[0] == "restore"]
        assert order  # non-empty
        assert any(b < a for a, b in zip(order, order[1:]))
        assert any(b > a for a, b in zip(order, order[1:]))

    def test_run_revolve_verifies_everything(self, context):
        spec = RevolveSpec(steps=10, snapshots=3, state_bytes=64 * MiB,
                           step_s=0.0, adjoint_s=0.0)
        with ScoreEngine(context) as engine:
            result = run_revolve(engine, spec, hints=True)
        assert result.adjoint_steps == spec.steps
        assert result.forward_steps == min_forward_steps(spec.steps, spec.snapshots - 1)
        assert result.verified == len(result.restore_latencies) > 0


# -- kvcache schedule ---------------------------------------------------------
class TestKvCacheSchedule:
    def test_restore_chains_per_session(self):
        spec = KvCacheSpec(sessions=6, events=36, seed=1)
        schedule = generate_kvcache_schedule(spec)
        assert len(schedule) == spec.events
        last = {}
        first_seen = set()
        for ev in schedule:
            if ev.session not in first_seen:
                assert ev.restore_id is None  # first activation creates
                first_seen.add(ev.session)
            else:
                assert ev.restore_id == last[ev.session]
            last[ev.session] = ev.suspend_id
        # Suspend ids are unique and dense.
        ids = [ev.suspend_id for ev in schedule]
        assert sorted(ids) == list(range(spec.events))

    def test_deterministic_and_time_ordered(self):
        spec = KvCacheSpec(sessions=5, events=30, seed=9)
        a = generate_kvcache_schedule(spec)
        b = generate_kvcache_schedule(spec)
        assert a == b
        assert all(x.at <= y.at for x, y in zip(a, a[1:]))

    def test_adversarial_still_chains(self):
        spec = KvCacheSpec(sessions=5, events=40, adversarial=True, seed=2)
        schedule = generate_kvcache_schedule(spec)
        last = {}
        for ev in schedule:
            assert ev.restore_id == last.get(ev.session)
            last[ev.session] = ev.suspend_id

    def test_oracle_order_matches_restores(self):
        spec = KvCacheSpec(sessions=4, events=24, seed=3)
        schedule = generate_kvcache_schedule(spec)
        oracle = oracle_restore_order(schedule)
        assert oracle == [ev.restore_id for ev in schedule if ev.restore_id is not None]
        assert len(oracle) == spec.events - spec.sessions


class TestKvCacheLifecycle:
    def _run(self, spec, predict_enabled=False, hints=False):
        changes = {"telemetry": True}
        if predict_enabled:
            changes["predict"] = PredictConfig(enabled=True)
        cfg = tiny_config(**changes)
        # 2 GPU slots / 4 host slots for 8 live blocks: re-activations of
        # cold sessions must come back from the SSD.
        cfg = cfg.with_(
            cache=CacheConfig(
                gpu_cache_size=2 * 128 * MiB, host_cache_size=4 * 128 * MiB
            )
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                result = run_kvcache(engine, spec, hints=hints)
                ssd_reads = engine.telemetry.registry.counter(
                    "tier.ssd.read_ops"
                ).value
        return result, ssd_reads

    def test_reactivation_of_evicted_session_verifies(self):
        spec = KvCacheSpec(
            sessions=8, events=32, base_period_s=0.2, think_s=0.001, seed=4
        )
        result, ssd_reads = self._run(spec)
        # Every re-activation restored the exact suspended bytes...
        assert result.verified == len(result.restore_latencies) == spec.events - spec.sessions
        # ...and the tiny caches forced at least one from the SSD.
        assert ssd_reads > 0

    def test_abandoned_sessions_are_final_suspends(self):
        spec = KvCacheSpec(sessions=8, events=32, seed=4)
        schedule = generate_kvcache_schedule(spec)
        expected = sorted({ev.session: ev.suspend_id for ev in schedule}.values())
        result, _ = self._run(spec)
        # One per session: the last suspend never re-activates (session
        # end) and its checkpoint is simply abandoned, never restored.
        assert result.abandoned == expected
        assert len(result.abandoned) == spec.sessions

    def test_learned_mode_verifies_and_speculates(self):
        spec = KvCacheSpec(
            sessions=6, events=42, base_period_s=0.3, think_s=0.001, seed=5
        )
        result, _ = self._run(spec, predict_enabled=True)
        assert result.verified == len(result.restore_latencies)
        stats = result.engine_stats["prediction"]
        assert stats["spec_prefetches"] > 0


# -- demand restore joins in-flight speculative prefetch ----------------------
class TestDemandJoinsPrefetch:
    def test_no_duplicate_ssd_read(self, rng):
        slow_ssd = dataclasses.replace(
            HardwareSpec(), ssd_read_bandwidth=16 * MiB  # 128 MiB ~ 8 nominal s
        )
        cfg = tiny_config(telemetry=True, hardware=slow_ssd)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                buf = ctx.device.alloc_buffer(128 * MiB)
                buf.fill_random(rng)
                expected = buf.checksum()
                engine.checkpoint(0, buf)
                engine.wait_for_flushes(timeout=600.0)
                record = engine.catalog.get(0)
                with engine.monitor:
                    engine.gpu_cache.evict(record)
                    engine.host_cache.evict(record)
                reads = engine.telemetry.registry.counter("tier.ssd.read_ops")
                assert reads.value == 0
                # Kick off a prefetch of the SSD-only copy and catch it
                # mid-flight (the slow SSD keeps the window open ~16 ms).
                engine.prefetch_enqueue(0)
                engine.prefetch_start()
                deadline = time.monotonic() + 5.0
                while not record.prefetch_inflight:
                    assert time.monotonic() < deadline, "prefetch never started"
                    time.sleep(0.0005)
                # The demand restore must join the in-flight promotion —
                # wait for its transfer — not issue a second SSD read.
                out = ctx.device.alloc_buffer(128 * MiB)
                engine.restore(0, out)
                assert out.checksum() == expected
                assert reads.value == 1
