"""Statistics helpers and deterministic RNG derivation."""

import pytest

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import harmonic_mean, percentile, summarize


class TestSummarize:
    def test_single_value(self):
        s = summarize([4.0])
        assert s.count == 1 and s.mean == 4.0 and s.stddev == 0.0

    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.stddev == pytest.approx(1.0)

    def test_total(self):
        assert summarize([1, 2, 3]).total == 6.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        assert percentile([3, 1, 2], 0) == 1.0
        assert percentile([3, 1, 2], 100) == 3.0

    def test_single(self):
        assert percentile([7], 63) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestHarmonicMean:
    def test_equal_values(self):
        assert harmonic_mean([4, 4, 4]) == pytest.approx(4.0)

    def test_known_value(self):
        assert harmonic_mean([1, 2]) == pytest.approx(4 / 3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])


class TestRng:
    def test_derive_is_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_differs(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_not_concatenation(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_make_rng_streams_independent(self):
        a = make_rng(7, "x").integers(0, 1 << 30, size=8)
        b = make_rng(7, "y").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    def test_make_rng_reproducible(self):
        a = make_rng(7, "x").integers(0, 1 << 30, size=8)
        b = make_rng(7, "x").integers(0, 1 << 30, size=8)
        assert list(a) == list(b)
