"""Property test: the O(n) sliding window matches brute-force search.

For random small fragment tables, Algorithm 1's two-pointer scan must find
a window with exactly the optimal (p_score, -s_score) among all contiguous
admissible windows large enough for the incoming checkpoint.
"""

from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alloctable import AllocTable
from repro.core.catalog import CheckpointRecord
from repro.core.scoring import FragmentCost, ScorePolicy


def build_random_table(layout: List[Tuple[bool, int]], capacity: int) -> AllocTable:
    table = AllocTable(capacity)
    offset = 0
    ckpt_id = 0
    for is_ckpt, size in layout:
        if offset + size > capacity:
            break
        if is_ckpt:
            table.insert(CheckpointRecord(ckpt_id, size, size, 0), size, offset)
            ckpt_id += 1
        offset += size
    return table


def brute_force_best(fragments, size_new, cost_of, limit=None, min_offset=0):
    """All-pairs window search; returns the optimal (p, -s) or None."""
    n = len(fragments)
    best: Optional[Tuple[float, float]] = None
    for i in range(n):
        total = 0
        p = 0.0
        s = 0.0
        for j in range(i, n):
            c = cost_of(fragments[j])
            if c.barrier or fragments[j].offset < min_offset:
                break
            if limit is not None and fragments[j].end > limit:
                break
            total += fragments[j].size
            p += c.p
            s += c.s
            if total >= size_new:
                key = (p, -s)
                if best is None or key < best:
                    best = key
                break  # extending further only worsens or equals
    return best


def hashed_cost(seed):
    """Deterministic pseudo-random per-checkpoint costs, including barriers."""

    def cost_of(frag) -> FragmentCost:
        if frag.is_gap:
            return FragmentCost(p=0.0, s=100.0, barrier=False)
        cid = frag.record.ckpt_id
        h = (cid * 2654435761 + seed) & 0xFFFF
        return FragmentCost(
            p=float(h % 5),
            s=float((h >> 4) % 7),
            barrier=(h >> 8) % 5 == 0,
        )

    return cost_of


@st.composite
def scenario(draw):
    layout = draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 8)),
            min_size=1,
            max_size=14,
        )
    )
    size_new = draw(st.integers(1, 20))
    seed = draw(st.integers(0, 2**16))
    return layout, size_new, seed


@given(scenario())
@settings(max_examples=200, deadline=None)
def test_two_pointer_matches_brute_force(data):
    layout, size_new, seed = data
    capacity = 64
    table = build_random_table(layout, capacity)
    fragments = table.fragments()
    cost_of = hashed_cost(seed)

    window = ScorePolicy().select(fragments, size_new, cost_of)
    expected = brute_force_best(fragments, size_new, cost_of)
    if expected is None:
        assert window is None
        return
    assert window is not None
    assert window.size >= size_new
    assert (window.p_score, -window.s_score) == expected


@given(scenario(), st.integers(0, 64))
@settings(max_examples=100, deadline=None)
def test_two_pointer_respects_limit(data, limit):
    layout, size_new, seed = data
    table = build_random_table(layout, 64)
    fragments = table.fragments()

    def cost_of(frag) -> FragmentCost:
        return FragmentCost(p=0.0, s=0.0, barrier=False)

    window = ScorePolicy().select(fragments, size_new, cost_of, limit=limit)
    if window is not None:
        assert fragments[window.end - 1].end <= limit
        assert window.size >= size_new


@given(scenario(), st.integers(0, 64), st.integers(0, 64))
@settings(max_examples=200, deadline=None)
def test_two_pointer_matches_brute_force_in_region(data, limit, min_offset):
    """Full oracle with barriers AND both region restrictions combined."""
    layout, size_new, seed = data
    table = build_random_table(layout, 64)
    fragments = table.fragments()
    cost_of = hashed_cost(seed)

    window = ScorePolicy().select(
        fragments, size_new, cost_of, limit=limit, min_offset=min_offset
    )
    expected = brute_force_best(
        fragments, size_new, cost_of, limit=limit, min_offset=min_offset
    )
    if expected is None:
        assert window is None
        return
    assert window is not None
    assert window.size >= size_new
    assert window.offset >= min_offset
    assert fragments[window.end - 1].end <= limit
    assert (window.p_score, -window.s_score) == expected
