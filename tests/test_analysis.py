"""The analysis package: DAG reconstruction, attribution, SLOs, diffing.

Unit tests drive :mod:`repro.analysis` with hand-built events where the
right answer is arithmetic; the end-to-end tests run a real serialized
workload with causal tracing on and check the paper-level properties —
every operation ≥95 % attributed, zero orphan spans, restores parented to
the checkpoints that produced their data — and that ``diff_reports``
localizes an injected SSD slowdown to the ``ssd × transfer`` cell.

The end-to-end runs use a 0.05 time scale (like the contention benchmark):
wall-clock jitter feeds the virtual clock at ``wall / time_scale`` nominal
seconds, and the diff assertions compare nominal transfer times that must
dominate that noise floor.
"""

import dataclasses

from repro.analysis.attribution import attribute_dag, attribute_op
from repro.analysis.dag import build_dag
from repro.analysis.report import analyze_events, diff_reports, render_diff, render_report
from repro.analysis.slo import evaluate_dag
from repro.config import (
    AnalysisConfig,
    CacheConfig,
    HardwareSpec,
    RuntimeConfig,
    ScaleModel,
    SloConfig,
)
from repro.core.engine import ScoreEngine
from repro.telemetry.bus import TraceEvent
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import KiB, MiB


def ev(name, ts, dur, op_id, category, phase="X", parent_id=None, track="t", **args):
    return TraceEvent(
        name=name,
        track=track,
        ts=ts,
        phase=phase,
        dur=dur,
        args=args,
        op_id=op_id,
        parent_id=parent_id,
        category=category,
    )


# -- DAG reconstruction -------------------------------------------------------
def test_build_dag_groups_and_links():
    events = [
        ev("copy-in", 0.0, 1.0, "c0:1", "transfer"),
        ev("d2h", 1.0, 0.5, "c0:1", "transfer"),
        ev("promote", 5.0, 1.0, "r0:1", "transfer", parent_id="c0:1"),
        ev("hint-wait", 4.0, 0.5, "f0:2", "queue", parent_id="c0:2"),
    ]
    dag = build_dag(events)
    assert sorted(dag.ops) == ["c0:1", "f0:2", "r0:1"]
    assert not dag.orphans
    ckpt = dag.ops["c0:1"]
    assert (ckpt.kind, ckpt.pid, ckpt.ckpt) == ("checkpoint", 0, 1)
    assert len(ckpt.events) == 2
    assert dag.ops["r0:1"].parent_id == "c0:1"
    assert ckpt.children == ["r0:1"]
    # f0:2's parent checkpoint is not in the trace window: it is a root.
    roots = {op.op_id for op in dag.roots()}
    assert roots == {"c0:1", "f0:2"}


def test_build_dag_collects_orphans():
    events = [
        ev("copy-in", 0.0, 1.0, "c0:1", "transfer"),
        # A category with no op id: the emission bug the CI gate hunts.
        ev("stray", 1.0, 0.5, None, "transfer"),
        # A malformed op id.
        ev("bad", 2.0, 0.5, "zz", "queue"),
        # Untagged events are simply not part of any DAG — not orphans.
        ev("evict-window", 3.0, 0.0, None, None, phase="i"),
    ]
    dag = build_dag(events)
    assert len(dag.orphans) == 2
    assert {e.name for e in dag.orphans} == {"stray", "bad"}
    assert sorted(dag.ops) == ["c0:1"]


def test_op_window_ignores_late_instants():
    events = [
        ev("copy-in", 0.0, 1.0, "c0:1", "transfer"),
        # The extent's eviction fires long after the op finished; it must
        # not stretch the window (the gap would be nobody's time).
        ev("evict", 50.0, 0.0, "c0:1", None, phase="i"),
    ]
    op = build_dag(events).ops["c0:1"]
    assert op.end == 1.0
    assert op.wall == 1.0


# -- attribution sweep --------------------------------------------------------
def test_attribute_op_innermost_wins():
    # A retry backoff nested inside a transfer: the inner span owns its
    # interval, the container keeps the rest.
    events = [
        ev("put", 0.0, 10.0, "c0:1", "transfer", tier="ssd"),
        ev("backoff", 4.0, 2.0, "c0:1", "retry"),
    ]
    attr = attribute_op(build_dag(events).ops["c0:1"])
    assert attr.by_category["transfer"] == 8.0
    assert attr.by_category["retry"] == 2.0
    assert attr.coverage == 1.0
    assert [s.name for s in attr.critical_path] == ["put", "backoff", "put"]
    assert attr.by_tier_category[("ssd", "transfer")] == 8.0
    assert attr.by_tier_category[("-", "retry")] == 2.0


def test_attribute_op_same_start_prefers_higher_priority():
    # Both spans open at t=0: priority breaks the tie (transfer > queue),
    # the wait keeps only its uncovered tail.
    events = [
        ev("wait", 0.0, 10.0, "c0:1", "queue"),
        ev("copy", 0.0, 4.0, "c0:1", "transfer"),
    ]
    attr = attribute_op(build_dag(events).ops["c0:1"])
    assert attr.by_category["transfer"] == 4.0
    assert attr.by_category["queue"] == 6.0


def test_attribute_op_reports_uncovered_gap():
    events = [
        ev("a", 0.0, 1.0, "c0:1", "transfer"),
        ev("b", 9.0, 1.0, "c0:1", "transfer"),
    ]
    attr = attribute_op(build_dag(events).ops["c0:1"])
    assert attr.wall == 10.0
    assert attr.covered == 2.0
    assert not attr.complete


def test_attribute_dag_stats_and_invariant():
    events = [
        ev("a", 0.0, 1.0, "c0:1", "transfer"),
        ev("b", 0.0, 2.0, "r0:1", "queue", parent_id="c0:1"),
    ]
    attr = attribute_dag(build_dag(events))
    stats = attr.coverage_stats()
    assert stats["ops"] == 2
    assert stats["min"] == 1.0
    assert not stats["violations"]
    assert stats["orphans"] == 0
    assert attr.complete()
    bad = attribute_dag(build_dag(events + [ev("stray", 0.0, 1.0, None, "queue")]))
    assert not bad.complete()


# -- end-to-end scenario ------------------------------------------------------
#: 0.05 time scale: nominal SSD transfer times (45 ms per 256 MiB leg at
#: 5.5 GiB/s) sit well above the wake-up-jitter noise floor.
ANALYSIS_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.05, alignment=512 * KiB)
SNAPSHOT = 256 * MiB
VERSIONS = 8
#: Targets every op breaches, so live slo-breach/slo-burn emission fires.
TIGHT_SLO = SloConfig(
    durability_target_s=0.001,
    restore_target_s=0.001,
    min_samples=2,
    burn_rate_threshold=0.1,
    window_s=1e6,
)

_EVENT_CACHE = {}


def scenario_events(slow=False):
    """Serialized checkpoints + cold reverse restores, causal tracing on.

    ``slow=True`` halves the SSD read/write bandwidth — the injected
    regression the diff test must localize.  Results are memoized: the
    module's tests share two runs.
    """
    if slow in _EVENT_CACHE:
        return _EVENT_CACHE[slow]
    hw = HardwareSpec()
    if slow:
        hw = dataclasses.replace(
            hw,
            ssd_write_bandwidth=hw.ssd_write_bandwidth / 2,
            ssd_read_bandwidth=hw.ssd_read_bandwidth / 2,
        )
    cfg = RuntimeConfig(
        scale=ANALYSIS_SCALE,
        # Two GPU + two host slots: most of the history lives only on the
        # SSD by restore time, so reverse restores are cold SSD promotions.
        cache=CacheConfig(gpu_cache_size=2 * SNAPSHOT, host_cache_size=2 * SNAPSHOT),
        charge_allocation_cost=False,
        processes_per_node=1,
        telemetry=True,
        hardware=hw,
        analysis=AnalysisConfig(enabled=True, slo=TIGHT_SLO),
    )
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx) as engine:
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(SNAPSHOT)
                buf.fill_random(make_rng(v, "analysis"))
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            out = ctx.device.alloc_buffer(SNAPSHOT)
            for v in reversed(range(VERSIONS)):
                engine.restore(v, out)
        events = cluster.telemetry.bus.snapshot()
    _EVENT_CACHE[slow] = events
    return events


def test_scenario_meets_accounting_invariant():
    dag = build_dag(scenario_events())
    attr = attribute_dag(dag)
    stats = attr.coverage_stats()
    assert stats["orphans"] == 0
    assert stats["violations"] == []
    assert stats["min"] >= 0.95
    assert attr.complete()


def test_scenario_dag_shape():
    dag = build_dag(scenario_events())
    checkpoints = dag.by_kind("checkpoint")
    restores = dag.by_kind("restore")
    assert [op.ckpt for op in checkpoints] == list(range(VERSIONS))
    assert sorted(op.ckpt for op in restores) == list(range(VERSIONS))
    # Every checkpoint reached the SSD (the cascade ran to quiescence).
    assert all(op.durable_at() is not None for op in checkpoints)
    for op in restores:
        assert op.parent_id == f"c0:{op.ckpt}"
        assert op.parent_id in dag.ops
        assert op.wall > 0


def test_scenario_live_slo_emission():
    events = scenario_events()
    names = {e.name for e in events}
    assert "slo-breach" in names  # the tight targets are breached live...
    assert "slo-burn" in names  # ...and the burn-rate alert fired
    breached_slos = {e.args["slo"] for e in events if e.name == "slo-breach"}
    assert breached_slos == {"durability", "restore"}


def test_evaluate_dag_replays_slo_post_hoc():
    dag = build_dag(scenario_events())
    tight = evaluate_dag(dag, TIGHT_SLO)
    assert tight.durability.violations == VERSIONS
    assert tight.restore.violations == VERSIONS
    assert tight.durability.alerts >= 1
    assert tight.restore.burn_rate() > TIGHT_SLO.burn_rate_threshold
    generous = evaluate_dag(dag, SloConfig(durability_target_s=1e6, restore_target_s=1e6))
    assert generous.durability.violations == 0
    assert generous.restore.violations == 0
    assert generous.durability.alerts == 0


def test_report_renders_and_serializes():
    import json

    report = analyze_events(scenario_events(), slo=TIGHT_SLO)
    assert report["ops"] == {"checkpoint": VERSIONS, "restore": VERSIONS, "prefetch": 0}
    assert report["attributed_s"] > 0
    assert report["accounting"]["orphans"] == 0
    json.dumps(report)  # the CLI/benchmarks write it verbatim
    text = render_report(report)
    assert "time by category" in text
    assert "transfer" in text


def test_diff_localizes_ssd_slowdown():
    base = analyze_events(scenario_events(slow=False))
    slow = analyze_events(scenario_events(slow=True))
    diff = diff_reports(base, slow)
    cells = {(c["tier"], c["category"]): c for c in diff["cells"]}
    ssd = cells[("ssd", "transfer")]
    # Halved bandwidth ≈ doubled SSD transfer time; jitter erodes a little.
    assert ssd["delta_s"] > 0
    assert ssd["ratio"] is not None and ssd["ratio"] > 1.4
    transfer_cells = [c for c in diff["cells"] if c["category"] == "transfer"]
    top = max(transfer_cells, key=lambda c: c["delta_s"])
    assert (top["tier"], top["category"]) == ("ssd", "transfer")
    text = render_diff(diff)
    assert "largest regression" in text
