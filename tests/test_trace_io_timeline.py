"""Trace import/export and timeline export."""

import json

import pytest

from repro.errors import ConfigError
from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.metrics.timeline import export_csv, export_json, sparkline
from repro.util.units import MiB
from repro.workloads.rtm import variable_trace
from repro.workloads.trace_io import (
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
)
from tests.conftest import TEST_SCALE


@pytest.fixture
def traces():
    return [
        variable_trace(TEST_SCALE, rank=r, seed=4, num_snapshots=12, total_bytes=12 * 128 * MiB)
        for r in range(3)
    ]


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path, traces):
        path = str(tmp_path / "t.csv")
        save_traces_csv(path, traces)
        loaded = load_traces_csv(path, TEST_SCALE)
        assert [t.sizes for t in loaded] == [t.sizes for t in traces]
        assert [t.rank for t in loaded] == [0, 1, 2]

    def test_unit_suffixes_accepted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("snapshot,rank,size\n0,0,128MB\n1,0,64MB\n")
        loaded = load_traces_csv(str(path), TEST_SCALE)
        assert loaded[0].sizes == (128 * MiB, 64 * MiB)

    def test_gap_in_indices_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0,128MB\n2,0,128MB\n")
        with pytest.raises(ConfigError):
            load_traces_csv(str(path), TEST_SCALE)

    def test_mismatched_rank_lengths_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0,128MB\n1,0,128MB\n0,1,128MB\n")
        with pytest.raises(ConfigError):
            load_traces_csv(str(path), TEST_SCALE)

    def test_bad_column_count_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0,0\n")
        with pytest.raises(ConfigError):
            load_traces_csv(str(path), TEST_SCALE)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("snapshot,rank,size\n")
        with pytest.raises(ConfigError):
            load_traces_csv(str(path), TEST_SCALE)


class TestJsonRoundtrip:
    def test_roundtrip(self, tmp_path, traces):
        path = str(tmp_path / "t.json")
        save_traces_json(path, traces)
        loaded = load_traces_json(path, TEST_SCALE)
        assert [t.sizes for t in loaded] == [t.sizes for t in traces]

    def test_bare_list_single_rank(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps([134217728, 67108864]))
        loaded = load_traces_json(str(path), TEST_SCALE)
        assert len(loaded) == 1 and loaded[0].rank == 0

    def test_sizes_aligned_on_load(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"ranks": {"0": [1000]}}))
        loaded = load_traces_json(str(path), TEST_SCALE)
        assert loaded[0].sizes[0] % TEST_SCALE.alignment == 0

    def test_bad_rank_key_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"ranks": {"zero": [1000]}}))
        with pytest.raises(ConfigError):
            load_traces_json(str(path), TEST_SCALE)

    def test_empty_ranks_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"ranks": {}}))
        with pytest.raises(ConfigError):
            load_traces_json(str(path), TEST_SCALE)


class TestTimelineExport:
    def _recorder(self):
        r = Recorder(process_id=2)
        r.record(OpEvent(OpKind.CHECKPOINT, 0, 0.0, 0.1, 128 * MiB))
        r.record(OpEvent(OpKind.RESTORE, 0, 1.0, 0.2, 128 * MiB, prefetch_distance=3))
        return r

    def test_csv_export(self, tmp_path):
        path = str(tmp_path / "tl.csv")
        assert export_csv(self._recorder(), path) == 2
        lines = open(path).read().splitlines()
        assert lines[0].startswith("kind,")
        assert len(lines) == 3

    def test_json_export(self, tmp_path):
        path = str(tmp_path / "tl.json")
        assert export_json(self._recorder(), path) == 2
        payload = json.loads(open(path).read())
        assert payload["process_id"] == 2
        assert payload["events"][1]["prefetch_distance"] == 3

    def test_events_sorted_by_start(self, tmp_path):
        r = Recorder()
        r.record(OpEvent(OpKind.RESTORE, 1, 5.0, 0.1, 1))
        r.record(OpEvent(OpKind.RESTORE, 0, 1.0, 0.1, 1))
        path = str(tmp_path / "tl.json")
        export_json(r, path)
        events = json.loads(open(path).read())["events"]
        assert [e["ckpt_id"] for e in events] == [0, 1]


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        out = sparkline([(i, 5.0) for i in range(4)])
        assert out == "▁▁▁▁"

    def test_ramp_uses_full_range(self):
        out = sparkline([(i, float(i)) for i in range(8)])
        assert out[0] == "▁" and out[-1] == "█"

    def test_downsamples_to_width(self):
        out = sparkline([(i, float(i)) for i in range(1000)], width=40)
        assert len(out) == 40
