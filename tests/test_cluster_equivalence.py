"""``ClusterConfig.enabled=False`` changes nothing — same discipline as
``SchedConfig`` / ``FaultConfig`` / ``ReduceConfig``.

The fabric plumbing (replica directory publication in the SSD store, the
fabric read-routing hook in ``durable_read_source``, the ``_pfs_put``
aggregation indirection in the flusher, the node/engine bindings on the
trace bus) must be invisible when the switch is off: no fabric object is
built, no directory attaches to the stores, replica targets stay empty,
and no event picks up a ``node_id``.  This runs the same deterministic
scenario on the default config and on a config with every *other* cluster
knob set to non-default values but ``enabled=False``, and asserts
identical eviction decisions, cache layouts, tier byte counters and
restored bytes.
"""

import json

from repro.config import ClusterConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import tiny_config

CKPT = 128 * MiB
VERSIONS = 12


def _run_scenario(cluster_cfg):
    cfg = tiny_config(telemetry=True)
    if cluster_cfg is not None:
        cfg = cfg.with_(cluster=cluster_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            # The gates under test: nothing built, nothing attached.
            assert cluster.fabric is None
            assert engine.fabric is None
            assert engine.replica_targets == []
            assert engine.ssd._replica_dir is None
            sums = {}
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(CKPT)
                buf.fill_random(make_rng(v, "cluster-equiv"))
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, VERSIONS, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            events = cluster.telemetry.bus.snapshot()
            assert all(ev.node_id is None for ev in events)
            assert all(ev.engine_id is None for ev in events)
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in events
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            cluster_counters = {
                name: registry.counter(name).value
                for name in (
                    "cluster.peer.reads",
                    "cluster.peer.fallbacks",
                    "cluster.agg.batches",
                    "cluster.agg.coalesced_ops",
                )
            }
            assert all(v == 0 for v in cluster_counters.values())
            return decisions, layouts, tier_bytes, restored


def test_disabled_cluster_is_bit_identical():
    default = _run_scenario(None)
    # Every non-default knob set; enabled=False must make them all inert.
    off = _run_scenario(
        ClusterConfig(
            enabled=False,
            replica_factor=3,
            peer_reads=False,
            peer_bandwidth=123e6,
            aggregation=False,
            aggregation_window_s=1.0,
            aggregation_max_ops=2,
            aggregation_max_bytes=1 * MiB,
            service_max_sessions=2,
            service_queue_depth=1,
            service_rpc_latency_s=0.1,
            repair=True,
            repair_interval_s=0.01,
            repair_class="DEMAND_READ",
            repair_max_inflight=1,
            failover=True,
        )
    )
    assert json.dumps(default, default=str) == json.dumps(off, default=str)
