"""Error hierarchy contracts and remaining small surfaces."""

import pytest

from repro import errors
from repro.core.sync import Monitor
from repro.clock import VirtualClock


class TestErrorHierarchy:
    def test_all_library_errors_are_reproerrors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, errors.ReproError), name

    def test_capacity_is_allocation_error(self):
        assert issubclass(errors.CapacityError, errors.AllocationError)
        assert issubclass(errors.FragmentationError, errors.AllocationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.IntegrityError("x")


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.metrics as metrics
        import repro.simgpu as simgpu
        import repro.tiers as tiers
        import repro.util as util
        import repro.workloads as workloads
        import repro.baselines as baselines
        import repro.harness as harness

        for mod in (core, metrics, simgpu, tiers, util, workloads, baselines, harness):
            for name in getattr(mod, "__all__", []):
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestMonitorContract:
    def test_notify_requires_held_monitor(self):
        mon = Monitor(VirtualClock(time_scale=0.002))
        with pytest.raises(RuntimeError):
            mon.notify_all()  # condition not acquired

    def test_wait_requires_held_monitor(self):
        mon = Monitor(VirtualClock(time_scale=0.002))
        with pytest.raises(RuntimeError):
            mon.wait(virtual_timeout=0.001)
