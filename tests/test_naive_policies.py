"""LRU / FIFO ablation eviction policies."""

from repro.core.alloctable import AllocTable
from repro.core.catalog import CheckpointRecord
from repro.core.scoring import FragmentCost
from repro.baselines.naive import FifoPolicy, LruPolicy


def rec(ckpt_id, size=10):
    return CheckpointRecord(ckpt_id, size, size, 0)


def build(entries, capacity=100):
    t = AllocTable(capacity)
    for ckpt_id, size, offset, inserted in entries:
        t.insert(rec(ckpt_id, size), size, offset, now=inserted)
    return t


def free_costs(barriers=()):
    def cost_of(frag):
        barrier = (not frag.is_gap) and frag.record.ckpt_id in barriers
        return FragmentCost(p=0.0, s=0.0, barrier=barrier)

    return cost_of


class TestLru:
    def test_picks_least_recently_used(self):
        t = build([(i, 10, i * 10, float(i)) for i in range(10)])
        t.touch(0, 99.0)  # ckpt 0 recently used
        w = LruPolicy().select(t.fragments(), 10, free_costs())
        assert w is not None
        assert t.fragments()[w.start].record.ckpt_id == 1

    def test_grows_window_rightward(self):
        t = build([(i, 10, i * 10, float(i)) for i in range(10)])
        w = LruPolicy().select(t.fragments(), 25, free_costs())
        assert w is not None
        assert w.size >= 25
        assert w.start == 0  # seeded at the oldest access (ckpt 0)

    def test_respects_barriers(self):
        t = build([(i, 10, i * 10, float(i)) for i in range(10)])
        w = LruPolicy().select(t.fragments(), 10, free_costs(barriers={0}))
        assert w is not None
        assert t.fragments()[w.start].record.ckpt_id == 1

    def test_none_when_all_blocked(self):
        t = build([(i, 10, i * 10, float(i)) for i in range(3)], capacity=30)
        w = LruPolicy().select(t.fragments(), 10, free_costs(barriers={0, 1, 2}))
        assert w is None

    def test_respects_limit(self):
        t = build([(i, 10, i * 10, float(9 - i)) for i in range(10)])
        # LRU seed would be ckpt 9 (oldest access), but limit excludes it.
        w = LruPolicy().select(t.fragments(), 10, free_costs(), limit=50)
        assert w is not None
        assert t.fragments()[w.end - 1].end <= 50

    def test_respects_min_offset(self):
        t = build([(i, 10, i * 10, float(i)) for i in range(10)])
        w = LruPolicy().select(t.fragments(), 10, free_costs(), min_offset=50)
        assert w is not None and w.offset >= 50

    def test_gap_window_when_sufficient(self):
        t = build([(1, 10, 0, 0.0)], capacity=100)  # gap [10, 100)
        w = LruPolicy().select(t.fragments(), 50, free_costs(barriers={1}))
        assert w is not None and w.offset == 10


class TestFifo:
    def test_picks_first_inserted(self):
        t = build([(0, 10, 0, 5.0), (1, 10, 10, 1.0), (2, 10, 20, 3.0)], capacity=30)
        w = FifoPolicy().select(t.fragments(), 10, free_costs())
        assert t.fragments()[w.start].record.ckpt_id == 1

    def test_insertion_time_not_access_time(self):
        t = build([(0, 10, 0, 5.0), (1, 10, 10, 1.0)], capacity=20)
        t.touch(1, 100.0)  # recency must not matter for FIFO
        w = FifoPolicy().select(t.fragments(), 10, free_costs())
        assert t.fragments()[w.start].record.ckpt_id == 1

    def test_grows_leftward_at_right_edge(self):
        t = build([(i, 10, i * 10, float(9 - i)) for i in range(10)])
        # Seed = ckpt 9 at the right edge; window must grow leftward.
        w = FifoPolicy().select(t.fragments(), 25, free_costs())
        assert w is not None
        assert w.end == 10
