"""Workload generation: RTM traces, restore orders, shot driver."""

import pytest

from repro.config import ScaleModel
from repro.errors import ConfigError
from repro.util.units import GiB, KiB, MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import (
    DEFAULT_TOTAL_PER_RANK,
    RtmTrace,
    snapshot_size_distribution,
    uniform_trace,
    variable_trace,
)

SCALE = ScaleModel(data_scale=512 * KiB, alignment=512 * KiB, time_scale=0.002)


class TestUniformTrace:
    def test_shape(self):
        t = uniform_trace(SCALE, num_snapshots=10, size=128 * MiB)
        assert len(t) == 10
        assert all(s == 128 * MiB for s in t.sizes)
        assert t.total_bytes == 10 * 128 * MiB

    def test_paper_defaults(self):
        t = uniform_trace(SCALE)
        assert len(t) == 384
        assert t.total_bytes == 48 * GiB

    def test_sizes_aligned(self):
        t = uniform_trace(SCALE, num_snapshots=3, size=100 * MiB + 5)
        assert all(s % SCALE.alignment == 0 for s in t.sizes)

    def test_zero_snapshots_rejected(self):
        with pytest.raises(ConfigError):
            uniform_trace(SCALE, num_snapshots=0)


class TestVariableTrace:
    def test_deterministic_in_seed_and_rank(self):
        a = variable_trace(SCALE, rank=3, seed=7, num_snapshots=50)
        b = variable_trace(SCALE, rank=3, seed=7, num_snapshots=50)
        assert a.sizes == b.sizes

    def test_ranks_differ(self):
        a = variable_trace(SCALE, rank=0, seed=7, num_snapshots=50)
        b = variable_trace(SCALE, rank=1, seed=7, num_snapshots=50)
        assert a.sizes != b.sizes

    def test_total_near_target(self):
        t = variable_trace(SCALE, rank=0, seed=7)
        # paper: per-shot totals spread 38–50 GB around 48 GB
        assert 0.6 * DEFAULT_TOTAL_PER_RANK < t.total_bytes < 1.6 * DEFAULT_TOTAL_PER_RANK

    def test_ramp_shape(self):
        """Early snapshots are much smaller than the plateau (Fig. 4)."""
        t = variable_trace(SCALE, rank=0, seed=7, num_snapshots=384)
        early = sum(t.sizes[:16]) / 16
        late = sum(t.sizes[-64:]) / 64
        assert early < 0.5 * late

    def test_sizes_aligned_and_positive(self):
        t = variable_trace(SCALE, rank=0, seed=1, num_snapshots=100)
        assert all(s > 0 and s % SCALE.alignment == 0 for s in t.sizes)


class TestDistribution:
    def test_fig4_columns(self):
        traces = [variable_trace(SCALE, rank=r, seed=7, num_snapshots=20) for r in range(4)]
        dist = snapshot_size_distribution(traces)
        assert len(dist) == 20
        for idx, mn, mx, avg in dist:
            assert mn <= avg <= mx

    def test_mismatched_lengths_rejected(self):
        traces = [
            variable_trace(SCALE, rank=0, seed=7, num_snapshots=10),
            variable_trace(SCALE, rank=1, seed=7, num_snapshots=12),
        ]
        with pytest.raises(ConfigError):
            snapshot_size_distribution(traces)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            snapshot_size_distribution([])


class TestRestoreOrders:
    def test_sequential(self):
        assert restore_order(RestoreOrder.SEQUENTIAL, 5) == [0, 1, 2, 3, 4]

    def test_reverse(self):
        assert restore_order(RestoreOrder.REVERSE, 5) == [4, 3, 2, 1, 0]

    def test_irregular_is_permutation(self):
        order = restore_order(RestoreOrder.IRREGULAR, 50, seed=3)
        assert sorted(order) == list(range(50))
        assert order != list(range(50))

    def test_irregular_deterministic(self):
        a = restore_order(RestoreOrder.IRREGULAR, 50, seed=3, rank=1)
        b = restore_order(RestoreOrder.IRREGULAR, 50, seed=3, rank=1)
        assert a == b

    def test_irregular_differs_by_rank(self):
        a = restore_order(RestoreOrder.IRREGULAR, 50, seed=3, rank=0)
        b = restore_order(RestoreOrder.IRREGULAR, 50, seed=3, rank=1)
        assert a != b

    def test_string_pattern_accepted(self):
        assert restore_order("reverse", 3) == [2, 1, 0]

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            restore_order(RestoreOrder.SEQUENTIAL, 0)
