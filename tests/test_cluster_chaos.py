"""Node failure domain: crash/rejoin chaos, anti-entropy repair, failover."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.directory import ReplicaDirectory
from repro.cluster.topology import ClusterTopology
from repro.config import CRASH_STAGES, ClusterConfig, FaultConfig
from repro.errors import ConfigError, InjectedCrash, TierOfflineError
from repro.util.rng import make_rng
from repro.util.units import MiB
from tests.conftest import tiny_config

CKPT = 64 * MiB


def chaos_config(num_nodes=3, faults=None, **cluster_kw):
    cluster_kw.setdefault("repair", True)
    cluster_kw.setdefault("failover", True)
    changes = dict(
        num_nodes=num_nodes,
        cluster=ClusterConfig(enabled=True, **cluster_kw),
    )
    if faults is not None:
        changes["faults"] = faults
    return tiny_config(**changes)


def make_topology(config, **engine_kw):
    engine_kw.setdefault("flush_to_pfs", True)
    return ClusterTopology(config, engine_kwargs=engine_kw)


def fill(engine, size=CKPT, seed=23):
    buf = engine.device.alloc_buffer(size)
    buf.fill_random(make_rng(seed, "chaos-test"))
    return buf


def submit_all(topo, count=1, size=CKPT):
    """One checkpoint per client session; returns {ckpt_id: checksum}."""
    sessions = [topo.service.connect(f"c{i}") for i in range(count)]
    sums = {}
    for i, session in enumerate(sessions):
        buf = fill(session.engine, size=size, seed=100 + i)
        sums[i] = buf.checksum()
        session.submit(i, buf)
    for engine in topo.engines:
        engine.wait_for_flushes(timeout=600.0)
    return sessions, sums


class TestReplicaDirectoryWithdraw:
    def test_withdraw_is_idempotent(self):
        directory = ReplicaDirectory()
        directory.publish((0, 0), 0)
        directory.publish((0, 0), 1)
        assert directory.withdraw((0, 0), 1) is True
        assert directory.withdraw((0, 0), 1) is False  # double withdraw
        assert directory.holders((0, 0)) == [0]

    def test_withdraw_of_last_holder_forgets_the_key(self):
        directory = ReplicaDirectory()
        directory.publish((0, 0), 2)
        assert directory.withdraw((0, 0), 2) is True
        assert directory.holders((0, 0)) == []
        assert len(directory) == 0
        # Withdrawing from a forgotten key stays a clean no-op.
        assert directory.withdraw((0, 0), 2) is False

    def test_withdraw_of_unknown_holder_is_a_noop(self):
        directory = ReplicaDirectory()
        directory.publish((0, 0), 0)
        assert directory.withdraw((0, 0), 7) is False
        assert directory.holders((0, 0)) == [0]

    def test_withdraw_node_sweeps_every_key_atomically(self):
        directory = ReplicaDirectory()
        directory.publish((0, 0), 0)
        directory.publish((0, 0), 1)
        directory.publish((8, 1), 1)
        withdrawn = directory.withdraw_node(1)
        assert sorted(withdrawn) == [(0, 0), (8, 1)]
        assert directory.holders((0, 0)) == [0]
        assert directory.holders((8, 1)) == []
        assert directory.withdraw_node(1) == []  # idempotent


class TestMembership:
    def test_inert_without_chaos(self):
        with make_topology(chaos_config()) as topo:
            membership = topo.fabric.membership
            assert membership.active is False
            assert membership.live_nodes() == [0, 1, 2]
            assert membership.reachable(0, 1)

    def test_crash_is_idempotent_and_kills_the_node(self):
        with make_topology(chaos_config()) as topo:
            submit_all(topo)
            membership = topo.fabric.membership
            membership.crash(1, "fail-stop")
            membership.crash(1, "fail-stop")  # no-op
            assert membership.active is True
            assert membership.state(1) == "down"
            assert topo.cluster.nodes[1].ssd.offline
            assert topo.engines[1].crashed.is_set()
            with pytest.raises(InjectedCrash):
                topo.engines[1].checkpoint(99, fill(topo.engines[1]))
            with pytest.raises(TierOfflineError):
                topo.cluster.nodes[1].ssd.get((0, 0))
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.membership.crashes"] == 1
            assert snap["cluster.membership.live_nodes"] == 2

    def test_unknown_mode_and_node_are_config_errors(self):
        with make_topology(chaos_config()) as topo:
            with pytest.raises(ConfigError):
                topo.fabric.membership.crash(0, "brownout")
            with pytest.raises(ConfigError):
                topo.fabric.membership.crash(17)

    def test_fail_stop_loses_media_power_loss_keeps_it(self):
        # repair off: a rejoin must not backfill the key and mask what the
        # crash mode did to the media.
        for mode, survives in (("fail-stop", False), ("power-loss", True)):
            with make_topology(chaos_config(repair=False)) as topo:
                session = topo.service.connect("c0")
                buf = fill(session.engine)
                session.submit(0, buf)
                for engine in topo.engines:
                    engine.wait_for_flushes(timeout=600.0)
                key = (session.engine.process_id, 0)
                membership = topo.fabric.membership
                membership.crash(1, mode)
                membership.rejoin(1)
                assert membership.state(1) == "up"  # no repairer: straight up
                assert topo.cluster.nodes[1].ssd.contains(key) is survives

    def test_partition_window_blocks_reachability(self):
        # The virtual clock is wall-driven, so window edges use extremes
        # (always-open / far-future) rather than racing the clock.
        faults = FaultConfig(enabled=True, partitions=((0, 1, 0.0, 1e9),))
        with make_topology(chaos_config(faults=faults)) as topo:
            membership = topo.fabric.membership
            assert membership.active is True
            assert not membership.reachable(0, 1)
            assert not membership.reachable(1, 0)  # symmetric
            assert membership.reachable(0, 2)  # other pairs untouched
        faults = FaultConfig(enabled=True, partitions=((0, 1, 1e9, 2e9),))
        with make_topology(chaos_config(faults=faults)) as topo:
            assert topo.fabric.membership.reachable(0, 1)  # window not open

    def test_scheduled_crash_applies_on_tick(self):
        faults = FaultConfig(enabled=True, node_crashes=((1, 0.0, "fail-stop"),))
        with make_topology(chaos_config(faults=faults)) as topo:
            membership = topo.fabric.membership
            assert membership.state(1) == "up"  # not applied yet
            membership.tick()
            assert membership.state(1) == "down"


class TestRepair:
    def test_crash_triggers_repair_back_to_factor(self):
        with make_topology(chaos_config(num_nodes=4)) as topo:
            _, sums = submit_all(topo, count=4)
            fabric = topo.fabric
            before = {key: holders for key, holders in fabric.directory.snapshot()}
            assert all(len(h) == 2 for h in before.values())
            fabric.membership.crash(1, "fail-stop")
            assert fabric.repairer.pending()
            copies = fabric.repairer.run()
            assert copies >= 1
            after = dict(fabric.directory.snapshot())
            assert set(after) == set(before)
            assert all(len(h) >= 2 for h in after.values())
            assert all(1 not in h for h in after.values())
            assert not fabric.repairer.pending()
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.repair.copies"] == copies
            assert snap["cluster.repair.pending"] == 0

    def test_repair_recovers_zero_holder_keys_from_pfs(self):
        """Both SSD holders die; the PFS copy seeds the re-replication."""
        with make_topology(chaos_config(num_nodes=4)) as topo:
            sessions, sums = submit_all(topo, count=1)
            key = (sessions[0].engine.process_id, 0)
            fabric = topo.fabric
            holders = fabric.directory.holders(key)
            assert len(holders) == 2
            for node in holders:
                fabric.membership.crash(node, "fail-stop")
            assert fabric.directory.holders(key) == []
            fabric.repairer.run()
            repaired = fabric.directory.holders(key)
            assert len(repaired) == 2
            assert not set(repaired) & set(holders)

    def test_repair_uses_repair_class_requests_under_sched(self):
        from repro.config import SchedConfig

        cfg = tiny_config(
            num_nodes=3,
            cluster=ClusterConfig(enabled=True, repair=True),
            sched=SchedConfig(enabled=True),
        )
        with make_topology(cfg) as topo:
            submit_all(topo)
            request = topo.fabric.repairer._request((0, 0))
            assert request is not None
            assert request.tclass.name == "CASCADE_FLUSH"
            topo.fabric.membership.crash(1, "fail-stop")
            assert topo.fabric.repairer.run() >= 1

    def test_repair_max_inflight_bounds_each_scan(self):
        cfg = chaos_config(num_nodes=4, repair_max_inflight=1)
        with make_topology(cfg) as topo:
            submit_all(topo, count=4)
            topo.fabric.membership.crash(1, "fail-stop")
            assert topo.fabric.repairer.repair_once() <= 1

    def test_rejoin_runs_backfill_before_entering_ring(self):
        with make_topology(chaos_config(num_nodes=3)) as topo:
            sessions, sums = submit_all(topo, count=3)
            fabric = topo.fabric
            fabric.membership.crash(1, "fail-stop")
            fabric.repairer.run()
            fabric.membership.rejoin(1)
            # Backfill ran to completion inside rejoin: the node is up
            # again and holds every blob its ring position owes.
            assert fabric.membership.state(1) == "up"
            ssd = topo.cluster.nodes[1].ssd
            owed = [
                key
                for key, _ in fabric.directory.snapshot()
                if 1 in fabric.repairer._desired_holders(key)
            ]
            assert owed, "ring position owes node 1 nothing — test is vacuous"
            assert all(ssd.contains(key) for key in owed)
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.membership.rejoins"] == 1
            assert snap["cluster.repair.backfills"] >= 1


class TestDegradedReads:
    def test_partition_isolating_all_peers_drops_to_pfs(self):
        faults = FaultConfig(enabled=True, partitions=((2, 1, 0.0, 1e9),))
        cfg = tiny_config(
            num_nodes=3,
            cluster=ClusterConfig(enabled=True, replica_factor=1),
            faults=faults,
        )
        with make_topology(cfg) as topo:
            # Factor 1: node 1's SSD is the only holder, and the partition
            # cuts node 2 off from it for the whole run.
            topo.service.connect("c0")
            home = topo.engines[1]
            buf = fill(home)
            want = buf.checksum()
            self_sess = topo.service.connect("c-home")
            assert self_sess.engine is home
            self_sess.submit(0, buf)
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            target = topo.engines[2]
            assert topo.fabric.peer_source(2, (home.process_id, 0)) is None
            out = target.device.alloc_buffer(CKPT)
            self_sess.restore(0, out, engine=target)
            assert out.checksum() == want
            snap = topo.telemetry.registry.snapshot()
            assert snap["cluster.membership.degraded_reads"] >= 1
            assert snap["tier.pfs.read_ops"] >= 1
            assert snap["cluster.peer.reads"] == 0


class TestServiceFailover:
    def test_submit_on_dead_home_fails_over_to_survivor(self):
        with make_topology(chaos_config(num_nodes=3)) as topo:
            session = topo.service.connect("c0")
            dead = session.engine
            topo.fabric.membership.crash(dead.node_id, "fail-stop")
            buf = fill(topo.engines[1])
            want = buf.checksum()
            session.submit(0, buf)
            assert session.engine is not dead
            assert not session.engine.crashed.is_set()
            session.engine.wait_for_flushes(timeout=600.0)
            out = session.engine.device.alloc_buffer(CKPT)
            session.restore(0, out)
            assert out.checksum() == want
            assert topo.service.stats()["failovers"] >= 1

    def test_restore_after_home_node_death_reads_surviving_copy(self):
        with make_topology(chaos_config(num_nodes=3)) as topo:
            session = topo.service.connect("c0")
            buf = fill(session.engine)
            want = buf.checksum()
            session.submit(0, buf)
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            topo.fabric.membership.crash(session.engine.node_id, "fail-stop")
            topo.fabric.repairer.run()
            out = topo.engines[1].device.alloc_buffer(CKPT)
            session.restore(0, out)  # session re-pins transparently
            assert out.checksum() == want

    def test_in_flight_submit_replay_is_idempotent(self):
        """A submit that reached a durable tier before the node died is
        not re-executed on the failover engine."""
        with make_topology(chaos_config(num_nodes=3)) as topo:
            session = topo.service.connect("c0")
            home = session.engine
            buf = fill(home)
            want = buf.checksum()
            session.submit(0, buf)
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            # Model the crash landing inside the RPC: the engine died but
            # the durable copy exists, so the replay must be skipped.
            topo.fabric.membership.crash(home.node_id, "fail-stop")
            latency = topo.service._failover_submit(session, 0, buf, home)
            assert latency == 0.0
            assert topo.service.stats()["replays_skipped"] == 1
            # Placement still resolves and the blob restores bit-identically.
            out = session.engine.device.alloc_buffer(CKPT)
            session.restore(0, out)
            assert out.checksum() == want

    def test_failover_disabled_surfaces_the_crash(self):
        with make_topology(chaos_config(num_nodes=3, failover=False)) as topo:
            session = topo.service.connect("c0")
            topo.fabric.membership.crash(session.engine.node_id, "fail-stop")
            with pytest.raises(InjectedCrash):
                session.submit(0, fill(topo.engines[1]))

    def test_no_survivors_is_a_lifecycle_error(self):
        from repro.errors import LifecycleError

        with make_topology(chaos_config(num_nodes=2)) as topo:
            session = topo.service.connect("c0")
            topo.fabric.membership.crash(0, "fail-stop")
            topo.fabric.membership.crash(1, "fail-stop")
            with pytest.raises(LifecycleError):
                session.submit(0, fill(topo.engines[0]))


class TestCrashMatrix:
    """Crash the home node at every flush-stage boundary; whatever became
    durable before the crash must restore bit-identically from a peer SSD
    replica or the PFS."""

    @pytest.mark.parametrize("stage", CRASH_STAGES)
    @pytest.mark.parametrize("mode", ["fail-stop", "power-loss"])
    def test_stage_boundary_node_crash_preserves_durable_data(self, stage, mode):
        faults = FaultConfig(enabled=True, crash_point=f"after-{stage}", crash_ckpt=0)
        with make_topology(chaos_config(num_nodes=3, faults=faults)) as topo:
            session = topo.service.connect("c0")
            home = session.engine
            buf = fill(home)
            want = buf.checksum()
            try:
                session.submit(0, buf)
            except InjectedCrash:
                pass  # before-d2h-style synchronous deaths
            for engine in topo.engines:
                if not engine.crashed.is_set():
                    engine.wait_for_flushes(timeout=600.0)
            # The flush-stage crash killed the home engine; now the whole
            # node goes with it.
            topo.fabric.membership.crash(home.node_id, mode)
            if topo.fabric.repairer.pending():
                topo.fabric.repairer.run()
            key = (home.process_id, 0)
            durable = bool(topo.fabric.directory.holders(key)) or (
                topo.cluster.pfs is not None and topo.cluster.pfs.contains(key)
            )
            survivor = next(e for e in topo.engines if not e.crashed.is_set())
            out = survivor.device.alloc_buffer(CKPT)
            if durable:
                session.restore(0, out, engine=survivor)
                assert out.checksum() == want
            else:
                with pytest.raises(Exception):
                    session.restore(0, out, engine=survivor)


class TestEquivalence:
    """Chaos machinery that never fires must not change what the fabric
    does: same directory layout, same tier byte counters, same restored
    bytes as a plain cluster run."""

    def _run(self, chaos):
        if chaos:
            faults = FaultConfig(
                enabled=True,
                node_crashes=((1, 1e9, "fail-stop"),),
                partitions=((0, 2, 1e9, 2e9),),
            )
            cfg = tiny_config(
                num_nodes=3,
                telemetry=True,
                cluster=ClusterConfig(enabled=True, repair=True, failover=True),
                faults=faults,
            )
        else:
            cfg = tiny_config(
                num_nodes=3, telemetry=True, cluster=ClusterConfig(enabled=True)
            )
        with make_topology(cfg) as topo:
            if chaos:
                assert topo.fabric.membership.active is True
            sessions, sums = submit_all(topo, count=3)
            restored = {}
            for i, session in enumerate(sessions):
                target = topo.engines[(i + 1) % 3]
                out = target.device.alloc_buffer(CKPT)
                session.restore(i, out, engine=target)
                restored[i] = out.checksum()
            assert restored == sums
            registry = topo.telemetry.registry.snapshot()
            counters = {
                name: registry[name]
                for name in (
                    "cluster.peer.reads",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                    "flush.repl.bytes",
                )
            }
            if chaos:
                assert registry["cluster.membership.crashes"] == 0
                assert registry["cluster.membership.degraded_reads"] == 0
                assert registry["cluster.repair.copies"] == 0
            return dict(topo.fabric.directory.snapshot()), counters, restored

    def test_armed_but_idle_chaos_is_bit_identical(self):
        assert self._run(chaos=False) == self._run(chaos=True)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_node=st.integers(min_value=0, max_value=3),
    mode=st.sampled_from(["fail-stop", "power-loss"]),
)
def test_repair_never_drops_below_pre_crash_durability(seed, crash_node, mode):
    """Property: after any single-node crash plus an anti-entropy pass,
    every checkpoint durable before the crash is still restorable with the
    original checksum, and no directory entry sits below replica_factor."""
    with make_topology(chaos_config(num_nodes=4)) as topo:
        sessions = [topo.service.connect(f"c{i}") for i in range(4)]
        sums = {}
        for i, session in enumerate(sessions):
            buf = session.engine.device.alloc_buffer(16 * MiB)
            buf.fill_random(make_rng(seed + i, "durability-prop"))
            sums[i] = buf.checksum()
            session.submit(i, buf)
        for engine in topo.engines:
            engine.wait_for_flushes(timeout=600.0)
        fabric = topo.fabric
        durable_before = {
            i
            for i in sums
            if fabric.directory.holders((sessions[i].engine.process_id, i))
            or topo.cluster.pfs.contains((sessions[i].engine.process_id, i))
        }
        fabric.membership.crash(crash_node, mode)
        fabric.repairer.run()
        factor = topo.config.cluster.replica_factor
        for key, holders in fabric.directory.snapshot():
            assert len(holders) >= factor
            assert crash_node not in holders
        for i in durable_before:
            target = next(e for e in topo.engines if not e.crashed.is_set())
            out = target.device.alloc_buffer(16 * MiB)
            sessions[i].restore(i, out, engine=target)
            assert out.checksum() == sums[i]
