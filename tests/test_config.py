"""Configuration validation and scale-model arithmetic."""

import pytest

from repro.config import (
    BENCH_SCALE,
    CacheConfig,
    HardwareSpec,
    RuntimeConfig,
    ScaleModel,
    bench_config,
)
from repro.errors import ConfigError
from repro.util.units import GiB, KiB, MiB


class TestHardwareSpec:
    def test_defaults_are_paper_values(self):
        spec = HardwareSpec()
        assert spec.gpus_per_node == 8
        assert spec.gpus_per_pcie_link == 2
        assert spec.d2d_bandwidth == pytest.approx(1024 * GiB)
        assert spec.d2h_bandwidth == pytest.approx(25 * GiB)
        assert spec.host_pin_bandwidth == pytest.approx(4 * GiB)

    def test_pcie_links_per_node(self):
        assert HardwareSpec().pcie_links_per_node == 4

    def test_gpus_must_divide_links(self):
        with pytest.raises(ConfigError):
            HardwareSpec(gpus_per_node=6, gpus_per_pcie_link=4)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            HardwareSpec(d2h_bandwidth=-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            HardwareSpec(transfer_latency=-1e-6)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            HardwareSpec(gpus_per_node=0)

    def test_uvm_params_validated(self):
        with pytest.raises(ConfigError):
            HardwareSpec(uvm_page_size=0)


class TestScaleModel:
    def test_align_rounds_up(self):
        s = ScaleModel(alignment=64 * KiB)
        assert s.align(1) == 64 * KiB
        assert s.align(64 * KiB) == 64 * KiB
        assert s.align(64 * KiB + 1) == 128 * KiB

    def test_align_zero_gives_one_unit(self):
        s = ScaleModel(alignment=64 * KiB)
        assert s.align(0) == 64 * KiB

    def test_align_negative_rejected(self):
        with pytest.raises(ConfigError):
            ScaleModel().align(-1)

    def test_payload_bytes(self):
        s = ScaleModel(data_scale=1024, alignment=1024)
        assert s.payload_bytes(2048) == 2

    def test_payload_bytes_requires_alignment(self):
        s = ScaleModel(data_scale=1024, alignment=1024)
        with pytest.raises(ConfigError):
            s.payload_bytes(1000)

    def test_alignment_must_be_multiple_of_data_scale(self):
        with pytest.raises(ConfigError):
            ScaleModel(data_scale=1024, alignment=1000)

    def test_data_scale_positive(self):
        with pytest.raises(ConfigError):
            ScaleModel(data_scale=0)

    def test_time_scale_range(self):
        with pytest.raises(ConfigError):
            ScaleModel(time_scale=0)

    def test_bench_scale_consistency(self):
        # 128 MiB checkpoints map onto whole payload bytes.
        assert BENCH_SCALE.payload_bytes(128 * MiB) * BENCH_SCALE.data_scale == 128 * MiB


class TestCacheConfig:
    def test_defaults_match_paper(self):
        c = CacheConfig()
        assert c.gpu_cache_size == 4 * GiB
        assert c.host_cache_size == 32 * GiB

    def test_of_parses_strings(self):
        c = CacheConfig.of("4GB", "32GB")
        assert c.gpu_cache_size == 4 * GiB

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(gpu_cache_size=0)


class TestRuntimeConfig:
    def test_total_processes(self):
        cfg = RuntimeConfig(num_nodes=2)
        assert cfg.total_processes == 16

    def test_processes_per_node_override(self):
        cfg = RuntimeConfig(processes_per_node=3)
        assert cfg.effective_processes_per_node == 3
        assert cfg.total_processes == 3

    def test_processes_per_node_bounded(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(processes_per_node=9)

    def test_nodes_positive(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(num_nodes=0)

    def test_eviction_policy_validated(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(eviction_policy="random")

    def test_with_returns_modified_copy(self):
        cfg = RuntimeConfig()
        other = cfg.with_(num_nodes=2)
        assert other.num_nodes == 2 and cfg.num_nodes == 1

    def test_bench_config(self):
        cfg = bench_config(num_nodes=2)
        assert cfg.scale is BENCH_SCALE
        assert cfg.num_nodes == 2
