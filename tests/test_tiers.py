"""Object stores (SSD/PFS) and cluster topology wiring."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import CheckpointNotFound, ConfigError
from repro.tiers.base import TierLevel
from repro.tiers.pfs import PfsStore
from repro.tiers.ssd import SsdStore
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import KiB, MiB
from tests.conftest import tiny_config

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB, time_scale=0.002)


def _clock():
    return VirtualClock(time_scale=0.002)


def _payload(nominal):
    return make_rng(2, "store").integers(0, 256, SCALE.payload_bytes(nominal), dtype=np.uint8)


class TestTierLevel:
    def test_ordering(self):
        assert TierLevel.GPU < TierLevel.HOST < TierLevel.SSD < TierLevel.PFS

    def test_slower_faster(self):
        assert TierLevel.GPU.slower == TierLevel.HOST
        assert TierLevel.PFS.slower is None
        assert TierLevel.GPU.faster is None
        assert TierLevel.HOST.faster == TierLevel.GPU


class TestSsdStore:
    @pytest.fixture(params=["memory", "file"])
    def store(self, request, tmp_path):
        directory = str(tmp_path / "ssd") if request.param == "file" else None
        return SsdStore(0, HardwareSpec(), SCALE, _clock(), directory=directory)

    def test_put_get_roundtrip(self, store):
        data = _payload(1 * MiB)
        seconds = store.put((0, 1), data, 1 * MiB)
        assert seconds > 0
        out, read_seconds = store.get((0, 1))
        assert np.array_equal(out[: data.size], data)
        assert read_seconds > 0

    def test_contains(self, store):
        assert not store.contains((0, 1))
        store.put((0, 1), _payload(1 * MiB), 1 * MiB)
        assert store.contains((0, 1))

    def test_missing_get_raises(self, store):
        with pytest.raises(CheckpointNotFound):
            store.get((9, 9))

    def test_delete(self, store):
        store.put((0, 1), _payload(1 * MiB), 1 * MiB)
        store.delete((0, 1))
        assert not store.contains((0, 1))
        with pytest.raises(CheckpointNotFound):
            store.get((0, 1))

    def test_delete_missing_is_noop(self, store):
        store.delete((5, 5))

    def test_stored_bytes_and_count(self, store):
        store.put((0, 1), _payload(1 * MiB), 1 * MiB)
        store.put((0, 2), _payload(2 * MiB), 2 * MiB)
        assert store.stored_bytes() == 3 * MiB
        assert store.object_count() == 2

    def test_overwrite_replaces(self, store):
        store.put((0, 1), _payload(1 * MiB), 1 * MiB)
        data2 = make_rng(3, "other").integers(0, 256, SCALE.payload_bytes(1 * MiB), dtype=np.uint8)
        store.put((0, 1), data2, 1 * MiB)
        out, _ = store.get((0, 1))
        assert np.array_equal(out[: data2.size], data2)
        assert store.object_count() == 1


class TestPfsStore:
    def test_roundtrip_and_node_links(self):
        store = PfsStore(HardwareSpec(), SCALE, _clock(), num_nodes=2)
        data = _payload(1 * MiB)
        store.put((0, 1), data, 1 * MiB, node_id=1)
        out, _ = store.get((0, 1), node_id=0)
        assert np.array_equal(out[: data.size], data)

    def test_node_links_cached(self):
        store = PfsStore(HardwareSpec(), SCALE, _clock())
        w1, r1 = store.node_links(0)
        w2, r2 = store.node_links(0)
        assert w1 is w2 and r1 is r2

    def test_missing_raises(self):
        store = PfsStore(HardwareSpec(), SCALE, _clock())
        with pytest.raises(CheckpointNotFound):
            store.get((1, 2))


class TestTopology:
    def test_processes_per_node_default(self):
        with Cluster(tiny_config(processes_per_node=None)) as c:
            assert len(c.process_contexts()) == 8

    def test_two_nodes(self):
        with Cluster(tiny_config(num_nodes=2, processes_per_node=2)) as c:
            ctxs = c.process_contexts()
            assert len(ctxs) == 4
            assert ctxs[0].node.node_id == 0
            assert ctxs[2].node.node_id == 1
            # process ids follow node * gpus_per_node + local rank
            assert ctxs[2].process_id == 8

    def test_pcie_link_shared_by_pairs(self):
        with Cluster(tiny_config(processes_per_node=8)) as c:
            devices = c.nodes[0].devices
            assert devices[0].d2h_link is devices[1].d2h_link
            assert devices[0].d2h_link is not devices[2].d2h_link
            assert devices[2].h2d_link is devices[3].h2d_link

    def test_ssd_shared_within_node(self):
        with Cluster(tiny_config(num_nodes=2, processes_per_node=2)) as c:
            ctxs = c.process_contexts()
            assert ctxs[0].ssd is ctxs[1].ssd
            assert ctxs[0].ssd is not ctxs[2].ssd

    def test_pfs_shared_across_nodes(self):
        with Cluster(tiny_config(num_nodes=2, processes_per_node=1)) as c:
            ctxs = c.process_contexts()
            assert ctxs[0].pfs is ctxs[1].pfs

    def test_arenas_cached_per_context(self):
        with Cluster(tiny_config()) as c:
            ctx = c.process_contexts()[0]
            assert ctx.gpu_cache_arena() is ctx.gpu_cache_arena()
            assert ctx.host_cache_arena() is ctx.host_cache_arena()

    def test_bad_local_rank_rejected(self):
        with Cluster(tiny_config()) as c:
            with pytest.raises(ConfigError):
                c.nodes[0].process_context(99)

    def test_host_usable_capacity_without_costs(self):
        with Cluster(tiny_config(charge_allocation_cost=False)) as c:
            ctx = c.process_contexts()[0]
            arena = ctx.host_cache_arena()
            assert ctx.host_usable_capacity() == arena.nominal_capacity

    def test_host_usable_capacity_grows_lazily(self):
        cfg = tiny_config(charge_allocation_cost=True, lazy_host_pinning=True)
        with Cluster(cfg) as c:
            ctx = c.process_contexts()[0]
            arena = ctx.host_cache_arena()
            early = ctx.host_usable_capacity()
            assert early < arena.nominal_capacity
            # 2 GiB at 4 GiB/s pins fully in 0.5 nominal seconds.
            c.clock.sleep(1.0)
            assert ctx.host_usable_capacity() == arena.nominal_capacity

    def test_eager_pinning_charges_up_front(self):
        cfg = tiny_config(charge_allocation_cost=True, lazy_host_pinning=False)
        with Cluster(cfg) as c:
            ctx = c.process_contexts()[0]
            before = c.clock.now()
            ctx.host_cache_arena()
            elapsed = c.clock.now() - before
            # 2 GiB at 4 GiB/s = 0.5 nominal seconds, paid synchronously.
            assert elapsed >= 0.4
            assert ctx.host_usable_capacity() == ctx.host_cache_arena().nominal_capacity

    def test_cluster_close_idempotent(self):
        c = Cluster(tiny_config())
        c.close()
        c.close()

    def test_ssd_directory_backend(self, tmp_path):
        cfg = tiny_config(ssd_directory=str(tmp_path))
        with Cluster(cfg) as c:
            ctx = c.process_contexts()[0]
            data = _payload(1 * MiB)
            ctx.ssd.put((0, 0), data, 1 * MiB)
            out, _ = ctx.ssd.get((0, 0))
            assert np.array_equal(out[: data.size], data)


class TestInternodeFabric:
    def test_link_shared_and_symmetric(self):
        with Cluster(tiny_config(num_nodes=3, processes_per_node=1)) as c:
            link = c.internode_link(0, 1)
            assert link is c.internode_link(1, 0)
            assert link is not c.internode_link(0, 2)

    def test_self_link_rejected(self):
        with Cluster(tiny_config(num_nodes=2, processes_per_node=1)) as c:
            with pytest.raises(ConfigError):
                c.internode_link(1, 1)

    def test_bandwidth_from_spec(self):
        cfg = tiny_config(num_nodes=2, processes_per_node=1)
        with Cluster(cfg) as c:
            link = c.internode_link(0, 1)
            assert link.bandwidth == pytest.approx(cfg.hardware.internode_bandwidth)


class TestStoreMetadata:
    def test_meta_roundtrip(self, tmp_path):
        store = SsdStore(0, HardwareSpec(), SCALE, _clock())
        store.put((3, 7), _payload(1 * MiB), 1 * MiB, meta={"checksum": 42, "true_size": 999})
        assert store.meta((3, 7)) == {"checksum": 42, "true_size": 999}
        assert store.size_of((3, 7)) == 1 * MiB

    def test_meta_missing_key_raises(self):
        store = SsdStore(0, HardwareSpec(), SCALE, _clock())
        with pytest.raises(CheckpointNotFound):
            store.meta((1, 1))

    def test_keys_for_process(self):
        store = SsdStore(0, HardwareSpec(), SCALE, _clock())
        for key in ((0, 2), (0, 1), (1, 5)):
            store.put(key, _payload(1 * MiB), 1 * MiB)
        assert store.keys_for_process(0) == [(0, 1), (0, 2)]
        assert store.keys_for_process(1) == [(1, 5)]
        assert store.keys_for_process(9) == []

    def test_file_backend_reindexes_on_restart(self, tmp_path):
        directory = str(tmp_path / "ssd")
        store = SsdStore(0, HardwareSpec(), SCALE, _clock(), directory=directory)
        store.put((0, 3), _payload(1 * MiB), 1 * MiB, meta={"checksum": 7})
        # A new store over the same directory (simulated restart):
        reborn = SsdStore(0, HardwareSpec(), SCALE, _clock(), directory=directory)
        assert reborn.contains((0, 3))
        assert reborn.meta((0, 3))["checksum"] == 7
        out, _ = reborn.get((0, 3))
        assert out.size > 0
