"""Checkpoint life-cycle FSM (Fig. 1)."""

import pytest

from repro.core.lifecycle import (
    COPY_STATES,
    EVICTABLE_STATES,
    PINNED_STATES,
    CkptState,
    Instance,
    allowed_transitions,
    validate_transition,
)
from repro.errors import LifecycleError
from repro.tiers.base import TierLevel

S = CkptState


class TestTransitionTable:
    @pytest.mark.parametrize(
        "src,dst",
        [
            (S.INIT, S.WRITE_IN_PROGRESS),
            (S.INIT, S.READ_IN_PROGRESS),
            (S.WRITE_IN_PROGRESS, S.WRITE_COMPLETE),
            (S.WRITE_COMPLETE, S.FLUSHED),
            (S.WRITE_COMPLETE, S.READ_COMPLETE),
            (S.FLUSHED, S.READ_COMPLETE),
            (S.FLUSHED, S.CONSUMED),
            (S.READ_IN_PROGRESS, S.READ_COMPLETE),
            (S.READ_COMPLETE, S.CONSUMED),
        ],
    )
    def test_legal_transitions(self, src, dst):
        validate_transition(src, dst)

    @pytest.mark.parametrize(
        "src,dst",
        [
            (S.INIT, S.WRITE_COMPLETE),
            (S.INIT, S.FLUSHED),
            (S.INIT, S.CONSUMED),
            (S.WRITE_IN_PROGRESS, S.FLUSHED),
            (S.WRITE_IN_PROGRESS, S.READ_IN_PROGRESS),
            (S.WRITE_COMPLETE, S.CONSUMED),
            (S.WRITE_COMPLETE, S.WRITE_IN_PROGRESS),
            (S.FLUSHED, S.WRITE_COMPLETE),
            (S.READ_IN_PROGRESS, S.CONSUMED),
            (S.READ_COMPLETE, S.FLUSHED),
            (S.CONSUMED, S.INIT),
            (S.CONSUMED, S.READ_COMPLETE),
        ],
    )
    def test_illegal_transitions(self, src, dst):
        with pytest.raises(LifecycleError):
            validate_transition(src, dst)

    def test_consumed_is_terminal(self):
        assert allowed_transitions(S.CONSUMED) == frozenset()


class TestStateSets:
    def test_evictable_states(self):
        assert EVICTABLE_STATES == {S.FLUSHED, S.CONSUMED}

    def test_pinned_states(self):
        assert PINNED_STATES == {S.READ_IN_PROGRESS, S.READ_COMPLETE}

    def test_copy_states(self):
        assert S.WRITE_IN_PROGRESS not in COPY_STATES
        assert S.READ_IN_PROGRESS not in COPY_STATES
        assert S.WRITE_COMPLETE in COPY_STATES
        assert S.CONSUMED in COPY_STATES


class TestInstance:
    def test_born_in_init(self):
        inst = Instance(TierLevel.GPU)
        assert inst.state is S.INIT
        assert not inst.has_copy and not inst.evictable and not inst.pinned

    def test_transition_records_time(self):
        inst = Instance(TierLevel.GPU)
        inst.transition(S.WRITE_IN_PROGRESS, now=3.5)
        assert inst.state_since == 3.5

    def test_illegal_transition_raises(self):
        inst = Instance(TierLevel.GPU)
        with pytest.raises(LifecycleError):
            inst.transition(S.CONSUMED)

    def test_try_transition_success(self):
        inst = Instance(TierLevel.GPU)
        assert inst.try_transition(S.WRITE_IN_PROGRESS)
        assert inst.state is S.WRITE_IN_PROGRESS

    def test_try_transition_failure_keeps_state(self):
        inst = Instance(TierLevel.GPU)
        assert not inst.try_transition(S.FLUSHED)
        assert inst.state is S.INIT

    def test_full_write_path(self):
        inst = Instance(TierLevel.GPU)
        for state in (S.WRITE_IN_PROGRESS, S.WRITE_COMPLETE, S.FLUSHED):
            inst.transition(state)
        assert inst.evictable

    def test_full_read_path(self):
        inst = Instance(TierLevel.GPU)
        for state in (S.READ_IN_PROGRESS, S.READ_COMPLETE):
            inst.transition(state)
        assert inst.pinned and inst.has_copy and not inst.evictable
        inst.transition(S.CONSUMED)
        assert inst.evictable

    def test_crossover_write_to_read(self):
        """A cached write-path instance serves a restore (condition (2))."""
        inst = Instance(TierLevel.GPU)
        inst.transition(S.WRITE_IN_PROGRESS)
        inst.transition(S.WRITE_COMPLETE)
        inst.transition(S.READ_COMPLETE)
        inst.transition(S.CONSUMED)
        assert inst.evictable

    def test_flags_default_clear(self):
        inst = Instance(TierLevel.HOST)
        assert not inst.flush_pending
        assert inst.read_pinned == 0
