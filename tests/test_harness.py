"""Experiment harness: Table-1 approaches, config plumbing, tiny runs."""

import pytest

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.harness.approaches import APPROACHES, TABLE1, make_engine_factory
from repro.harness.experiment import (
    Experiment,
    run_experiment,
    scaled_caches,
)
from repro.tiers.topology import Cluster
from repro.util.units import GiB, MiB
from repro.workloads.patterns import RestoreOrder
from repro.workloads.shot import HintMode
from tests.conftest import tiny_config


class TestTable1:
    def test_seven_approaches(self):
        assert len(TABLE1) == 7

    def test_adios2_only_no_hints(self):
        adios_rows = [a for a in TABLE1 if a.runtime == "adios2"]
        assert len(adios_rows) == 1
        assert adios_rows[0].hint_mode is HintMode.NONE

    def test_score_and_uvm_have_all_hint_modes(self):
        for runtime in ("score", "uvm"):
            modes = {a.hint_mode for a in TABLE1 if a.runtime == runtime}
            assert modes == set(HintMode)

    def test_keys_unique(self):
        assert len(APPROACHES) == len(TABLE1)

    def test_factory_builds_each_runtime(self):
        cfg = tiny_config()
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            for runtime in ("score", "uvm", "adios2"):
                engine = make_engine_factory(runtime)(ctx)
                engine.close()

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigError):
            make_engine_factory("magnetic-tape")


class TestScaledCaches:
    def test_paper_ratios(self):
        caches = scaled_caches(48 * GiB)
        assert caches.gpu_cache_size == 4 * GiB
        assert caches.host_cache_size == 32 * GiB

    def test_scales_linearly(self):
        caches = scaled_caches(12 * GiB)
        assert caches.gpu_cache_size == 1 * GiB
        assert caches.host_cache_size == 8 * GiB


class TestExperiment:
    def test_label(self):
        exp = Experiment(approach=APPROACHES["score-all"])
        assert "Score" in exp.label

    def test_with_override(self):
        exp = Experiment(approach=APPROACHES["score-all"])
        assert exp.with_(num_snapshots=10).num_snapshots == 10

    def test_tiny_run_end_to_end(self):
        exp = Experiment(
            approach=APPROACHES["score-all"],
            workload="uniform",
            order=RestoreOrder.REVERSE,
            num_snapshots=6,
            snapshot_size=128 * MiB,
            processes_per_node=2,
            config=tiny_config(processes_per_node=2),
            cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
            compute_interval=0.005,
        )
        result = run_experiment(exp)
        assert len(result.shots) == 2
        assert result.checkpoint_rate > 0
        assert result.restore_rate > 0

    def test_variable_workload_run(self):
        exp = Experiment(
            approach=APPROACHES["uvm-none"],
            workload="variable",
            order=RestoreOrder.IRREGULAR,
            num_snapshots=6,
            snapshot_size=128 * MiB,
            processes_per_node=1,
            config=tiny_config(),
            cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
            compute_interval=0.005,
        )
        result = run_experiment(exp)
        assert result.restore_rate > 0

    def test_unknown_workload_rejected(self):
        exp = Experiment(
            approach=APPROACHES["score-all"],
            workload="spiral",
            config=tiny_config(),
        )
        with pytest.raises(ConfigError):
            run_experiment(exp)

    def test_adios2_run(self):
        exp = Experiment(
            approach=APPROACHES["adios2-none"],
            num_snapshots=4,
            snapshot_size=128 * MiB,
            processes_per_node=1,
            config=tiny_config(),
            cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
            compute_interval=0.005,
        )
        result = run_experiment(exp)
        assert result.checkpoint_rate > 0
