"""Engine invariant validator."""

import pytest

from repro.core.validator import InvariantViolation, validate_engine
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


def test_fresh_engine_valid(engine):
    validate_engine(engine)


def test_valid_after_workload(engine, context):
    for v in range(20):
        engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
    engine.wait_for_flushes()
    validate_engine(engine)
    out = context.device.alloc_buffer(CKPT)
    for v in reversed(range(20)):
        engine.restore(v, out)
    validate_engine(engine)


def test_valid_with_hints_and_prefetch(engine, context):
    for v in range(12):
        engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
    engine.wait_for_flushes()
    for v in range(12):
        engine.prefetch_enqueue(v)
    engine.prefetch_start()
    engine.clock.sleep(1.0)
    validate_engine(engine)


def test_detects_orphan_fragment(engine, context):
    from repro.tiers.base import TierLevel

    engine.checkpoint(0, make_buffer(context, CKPT))
    engine.wait_for_flushes()
    record = engine.catalog.get(0)
    with engine.monitor:
        # Corrupt: drop the instance but leave the table fragment behind.
        record.drop_instance(TierLevel.GPU)
    with pytest.raises(InvariantViolation):
        validate_engine(engine)


def test_detects_phantom_durability(engine, context):
    engine.checkpoint(0, make_buffer(context, CKPT))
    engine.wait_for_flushes()
    engine.ssd.delete(engine.store_key(engine.catalog.get(0)))
    with pytest.raises(InvariantViolation):
        validate_engine(engine)


def test_detects_size_mismatch(engine, context):
    engine.checkpoint(0, make_buffer(context, CKPT))
    engine.wait_for_flushes()
    record = engine.catalog.get(0)
    with engine.monitor:
        engine.gpu_cache.table.lookup(record.ckpt_id).size -= 1
    with pytest.raises(InvariantViolation):
        validate_engine(engine)
