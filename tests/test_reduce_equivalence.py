"""``ReduceConfig.enabled=False`` changes nothing — the PR-2/3 discipline.

The reduction plumbing (``stored_size``/``wire_size`` call sites, the
``on_evict`` hook, the reducer gate in the engine) must be invisible when
the knob is off: ``stored_size`` collapses to ``nominal_size`` because no
record ever gets a reduction image, and ``on_evict`` is ``None``.  This
test runs the same deterministic scenario on two fresh clusters — the
default config and an ``enabled=False`` config with every *other* reduce
knob set to non-default values — and asserts identical eviction decision
streams, final cache layouts, tier byte counters and restored bytes.

(Checkpoints are serialized with ``wait_for_flushes`` between operations so
thread interleaving cannot perturb eviction order; event timestamps are
excluded, as wall-clock jitter feeds the virtual clock.)
"""

import json

from repro.config import ReduceConfig
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import tiny_config

CKPT = 128 * MiB
VERSIONS = 14


def _run_scenario(reduce_cfg):
    cfg = tiny_config(telemetry=True)
    if reduce_cfg is not None:
        cfg = cfg.with_(reduce=reduce_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            assert engine.reducer is None  # the gate under test
            sums = {}
            for v in range(VERSIONS):
                buf = ctx.device.alloc_buffer(CKPT)
                buf.fill_random(make_rng(v, "reduce-equiv"))
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                # Serialize the cascade: decisions become deterministic.
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, VERSIONS, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in cluster.telemetry.bus.snapshot()
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            sizes = {
                v: [
                    engine.catalog.get(v).stored_size(level)
                    for level in engine.catalog.get(v).instances
                ]
                for v in range(VERSIONS)
            }
            return decisions, layouts, tier_bytes, sizes, restored


def test_disabled_reduce_is_bit_identical():
    default = _run_scenario(None)
    # Every non-default knob set; enabled=False must make them all inert.
    off = _run_scenario(
        ReduceConfig(
            enabled=False,
            site="host",
            chunking="cdc",
            chunk_size=4 * MiB,
            min_chunk_size=1 * MiB,
            max_chunk_size=16 * MiB,
            delta=False,
            delta_threshold=0.3,
            max_delta_chain=1,
            chain_penalty=1.0,
            codec="zstd",
            recipe_overhead=4096,
        )
    )
    for got, want in zip(off, default):
        assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
            want, sort_keys=True, default=str
        )
    decisions = default[0]
    assert len(decisions) > 0  # the scenario must actually exercise eviction


def test_disabled_records_report_nominal_sizes():
    from repro.core.catalog import CheckpointRecord
    from repro.tiers.base import TierLevel

    record = CheckpointRecord(0, 128 * MiB, 128 * MiB, 0)
    assert record.reduction is None
    assert record.physical_size == record.nominal_size
    for level in TierLevel:
        assert record.stored_size(level) == record.nominal_size
    assert record.wire_size(TierLevel.GPU, TierLevel.PFS) == record.nominal_size
