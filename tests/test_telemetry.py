"""Unit tests for the telemetry subsystem (bus, metrics, exporters)."""

import json

import pytest

from repro.metrics.recorder import OpEvent, OpKind, Recorder
from repro.telemetry import (
    NULL_SPAN,
    MetricsRegistry,
    Telemetry,
    TraceBus,
    chrome_trace,
    events_by_track,
    filter_events,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.bus import TraceEvent


class FakeClock:
    """Minimal clock: tests advance time explicitly."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def make_bus(enabled=True, capacity=64):
    clock = FakeClock()
    return TraceBus(clock, enabled=enabled, capacity=capacity), clock


class TestTraceBus:
    def test_instant_records_event(self):
        bus, clock = make_bus()
        clock.t = 1.5
        bus.instant("evict", "p0-gpu", ckpt=3, forced=False)
        (event,) = bus.snapshot()
        assert event.name == "evict"
        assert event.track == "p0-gpu"
        assert event.ts == 1.5
        assert event.phase == "i"
        assert event.args == {"ckpt": 3, "forced": False}

    def test_span_records_complete_event_with_duration(self):
        bus, clock = make_bus()
        clock.t = 2.0
        with bus.span("d2h", "p0-flush-d2h", ckpt=7) as span:
            clock.t = 2.25
            span.add(abandoned=False)
        (event,) = bus.snapshot()
        assert event.phase == "X"
        assert event.ts == 2.0
        assert event.dur == pytest.approx(0.25)
        assert event.args == {"ckpt": 7, "abandoned": False}

    def test_ring_overflow_drops_oldest(self):
        bus, _ = make_bus(capacity=8)
        for i in range(20):
            bus.instant("e", "t", seq=i)
        assert len(bus) == 8
        assert bus.emitted == 20
        assert bus.dropped == 12
        # The retained window is the newest events, oldest first.
        assert [e.args["seq"] for e in bus.snapshot()] == list(range(12, 20))

    def test_disabled_bus_emits_nothing(self):
        bus, clock = make_bus(enabled=False)
        bus.instant("evict", "p0-gpu", ckpt=1)
        with bus.span("d2h", "p0-flush-d2h") as span:
            clock.t = 5.0
            span.add(bytes=128)
        assert len(bus) == 0
        assert bus.emitted == 0
        assert bus.dropped == 0
        assert bus.snapshot() == []

    def test_disabled_span_is_shared_null_object(self):
        bus, _ = make_bus(enabled=False)
        assert bus.span("a", "t") is NULL_SPAN
        assert bus.span("b", "t") is NULL_SPAN

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBus(FakeClock(), capacity=0)

    def test_clear_resets_counters(self):
        bus, _ = make_bus(capacity=4)
        for _ in range(10):
            bus.instant("e", "t")
        bus.clear()
        assert len(bus) == 0
        assert bus.emitted == 0
        assert bus.dropped == 0

    def test_tracks_first_seen_order(self):
        bus, _ = make_bus()
        bus.instant("a", "p1-app")
        bus.instant("b", "pfs")
        bus.instant("c", "p1-app")
        assert bus.tracks() == ["p1-app", "pfs"]

    def test_track_naming_convention(self):
        assert TraceBus.track(3, "gpu") == "p3-gpu"
        assert TraceBus.track(None, "pfs") == "pfs"


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4)
        g.add(-1)
        assert g.value == 3

    def test_histogram_snapshot(self):
        h = MetricsRegistry().histogram("wait", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["min"] == 0.05
        assert snap["max"] == 5.0
        assert snap["buckets"] == [(0.1, 1), (1.0, 1), (float("inf"), 1)]

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b.ops").inc(2)
        registry.gauge("a.depth").set(7)
        snap = registry.snapshot()
        assert list(snap) == ["a.depth", "b.ops"]
        json.dumps(snap, default=str)  # JSON-serialisable

    def test_merge_adds_counters_and_keeps_max_gauge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("ops").inc(3)
        r1.gauge("occ").set(0.5)
        r2.counter("ops").inc(4)
        r2.gauge("occ").set(0.25)
        r1.merge(r2.snapshot())
        assert r1.counter("ops").value == 7
        assert r1.gauge("occ").value == 0.5

    def test_merge_into_empty_reconstructs_histograms(self):
        src = MetricsRegistry()
        h = src.histogram("wait", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(2.0)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.get("wait").snapshot() == h.snapshot()


def synthetic_events():
    return [
        TraceEvent(name="checkpoint", track="p0-app", ts=0.0, phase="X", dur=0.5),
        TraceEvent(name="fsm", track="p0-lifecycle", ts=0.1, args={"ckpt": 0}),
        TraceEvent(name="d2h", track="p0-flush-d2h", ts=0.2, phase="X", dur=0.1),
        TraceEvent(name="ssd-put", track="node0-ssd", ts=0.3, phase="X", dur=0.2),
        TraceEvent(name="fsm", track="p0-lifecycle", ts=0.4, args={"ckpt": 1}),
        TraceEvent(name="pfs-put", track="pfs", ts=0.5, phase="X", dur=0.3),
    ]


class TestExporters:
    def test_chrome_trace_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), synthetic_events(), registry)
        doc = json.loads(path.read_text())  # must be valid JSON end to end
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["metrics"]["ops"] == 3
        events = doc["traceEvents"]
        # Per-process tracks group under their rank, shared ones under the
        # synthetic cluster process.
        names = {
            (e["pid"], e["args"]["name"]) for e in events if e["name"] == "thread_name"
        }
        assert (0, "app") in names
        assert (0, "lifecycle") in names
        assert (0, "flush-d2h") in names
        cluster_pids = {p for p, n in names if n in ("node0-ssd", "pfs")}
        assert len(cluster_pids) == 1
        (cluster_pid,) = cluster_pids
        assert cluster_pid != 0
        # Spans carry microsecond durations; instants are thread-scoped.
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] > 0 for e in spans)
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)

    def test_chrome_trace_per_track_monotonic(self):
        doc = chrome_trace(synthetic_events())
        per_track = {}
        for e in doc["traceEvents"]:
            if e["ph"] in ("X", "i"):
                per_track.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        assert per_track  # at least one real event per track
        for stamps in per_track.values():
            assert stamps == sorted(stamps)

    def test_write_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        count = write_jsonl(str(path), synthetic_events())
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(synthetic_events())
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "checkpoint"
        assert parsed[0]["dur"] == 0.5

    def test_render_summary_lists_metrics(self):
        registry = MetricsRegistry()
        registry.counter("cache.p0-gpu.evictions").inc(5)
        registry.histogram("wait").observe(0.2)
        bus, _ = make_bus()
        bus.instant("e", "t")
        text = render_summary(registry, bus)
        assert "cache.p0-gpu.evictions" in text
        assert "count=1" in text
        assert "1 events retained" in text

    def test_filter_and_group_helpers(self):
        events = synthetic_events()
        assert len(filter_events(events, name="fsm")) == 2
        assert len(filter_events(events, tracks=["pfs"])) == 1
        grouped = events_by_track(events)
        assert [e.ts for e in grouped["p0-lifecycle"]] == [0.1, 0.4]


class TestTelemetryFacade:
    def test_disabled_factory(self):
        t = Telemetry.disabled()
        assert not t.enabled
        assert t.bus.span("a", "t") is NULL_SPAN

    def test_enabled_records(self):
        t = Telemetry(enabled=True)
        t.bus.instant("e", "t")
        assert t.enabled
        assert len(t.bus) == 1


def op(kind, ckpt_id, started_at, blocked=0.5, nominal_bytes=100):
    return OpEvent(
        kind=kind,
        ckpt_id=ckpt_id,
        started_at=started_at,
        blocked=blocked,
        nominal_bytes=nominal_bytes,
    )


class TestRecorderSnapshotMerge:
    def test_snapshot_is_a_copy(self):
        r = Recorder()
        r.record(op(OpKind.CHECKPOINT, 0, 0.0))
        snap = r.snapshot()
        r.record(op(OpKind.CHECKPOINT, 1, 1.0))
        assert len(snap) == 1
        assert len(r.events) == 2

    def test_running_totals_match_events(self):
        r = Recorder()
        r.record(op(OpKind.CHECKPOINT, 0, 0.0, blocked=0.25, nominal_bytes=10))
        r.record(op(OpKind.CHECKPOINT, 1, 1.0, blocked=0.75, nominal_bytes=30))
        r.record(op(OpKind.RESTORE, 0, 2.0, blocked=0.5, nominal_bytes=10))
        assert r.total_blocked(OpKind.CHECKPOINT) == pytest.approx(1.0)
        assert r.total_bytes(OpKind.CHECKPOINT) == 40
        assert r.counts() == {"checkpoint": 2, "restore": 1}
        assert [e.ckpt_id for e in r.of_kind(OpKind.CHECKPOINT)] == [0, 1]

    def test_merge_interleaves_by_start_time(self):
        r1 = Recorder(process_id=0)
        r1.record(op(OpKind.CHECKPOINT, 0, 0.0))
        r1.record(op(OpKind.CHECKPOINT, 2, 2.0))
        r2 = Recorder(process_id=1)
        r2.record(op(OpKind.CHECKPOINT, 1, 1.0, nominal_bytes=7))
        r1.merge(r2)
        assert [e.ckpt_id for e in r1.events] == [0, 1, 2]
        assert r1.total_bytes(OpKind.CHECKPOINT) == 207
        assert r1.counts()["checkpoint"] == 3
        # The source recorder is untouched.
        assert len(r2.events) == 1

    def test_clear_resets_totals(self):
        r = Recorder()
        r.record(op(OpKind.FLUSH, 0, 0.0))
        r.clear()
        assert r.counts() == {}
        assert r.total_bytes(OpKind.FLUSH) == 0
        assert r.snapshot() == []
