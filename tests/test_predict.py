"""predict_evictable (state_ts estimation)."""

import math

from repro.core.catalog import CheckpointRecord
from repro.core.lifecycle import CkptState
from repro.core.predict import FORCE_EVICT_PENALTY, NEVER, instance_state_ts
from repro.tiers.base import TierLevel


def record_in(state, level=TierLevel.GPU, flush_pending=False):
    r = CheckpointRecord(1, 1024, 1024, 0)
    inst = r.instance(level)
    path = {
        CkptState.WRITE_IN_PROGRESS: [CkptState.WRITE_IN_PROGRESS],
        CkptState.WRITE_COMPLETE: [CkptState.WRITE_IN_PROGRESS, CkptState.WRITE_COMPLETE],
        CkptState.FLUSHED: [
            CkptState.WRITE_IN_PROGRESS,
            CkptState.WRITE_COMPLETE,
            CkptState.FLUSHED,
        ],
        CkptState.READ_IN_PROGRESS: [CkptState.READ_IN_PROGRESS],
        CkptState.READ_COMPLETE: [CkptState.READ_IN_PROGRESS, CkptState.READ_COMPLETE],
        CkptState.CONSUMED: [
            CkptState.READ_IN_PROGRESS,
            CkptState.READ_COMPLETE,
            CkptState.CONSUMED,
        ],
    }[state]
    for s in path:
        inst.transition(s)
    inst.flush_pending = flush_pending
    return r


EST = lambda n: 2.5  # noqa: E731 - constant flush estimate


def test_flushed_is_immediately_evictable():
    assert instance_state_ts(record_in(CkptState.FLUSHED), TierLevel.GPU, EST) == 0.0


def test_consumed_is_immediately_evictable():
    assert instance_state_ts(record_in(CkptState.CONSUMED), TierLevel.GPU, EST) == 0.0


def test_flush_pending_blocks_even_when_evictable():
    r = record_in(CkptState.FLUSHED, flush_pending=True)
    assert instance_state_ts(r, TierLevel.GPU, EST) == 2.5


def test_write_states_use_flush_estimate():
    for state in (CkptState.WRITE_IN_PROGRESS, CkptState.WRITE_COMPLETE):
        assert instance_state_ts(record_in(state), TierLevel.GPU, EST) == 2.5


def test_read_in_progress_never_evictable():
    assert instance_state_ts(record_in(CkptState.READ_IN_PROGRESS), TierLevel.GPU, EST) is NEVER


def test_read_complete_pinned_unless_forced():
    r = record_in(CkptState.READ_COMPLETE)
    assert instance_state_ts(r, TierLevel.GPU, EST) is NEVER
    forced = instance_state_ts(r, TierLevel.GPU, EST, allow_pinned=True)
    assert forced == FORCE_EVICT_PENALTY
    assert math.isfinite(forced)


def test_missing_instance_is_free():
    r = CheckpointRecord(1, 1024, 1024, 0)
    assert instance_state_ts(r, TierLevel.GPU, EST) == 0.0
