"""ADIOS2-like and UVM comparator runtimes."""

import pytest

from repro.baselines.adios2 import Adios2Engine
from repro.baselines.uvm_runtime import UvmEngine
from repro.errors import (
    CheckpointNotFound,
    EngineClosedError,
    IntegrityError,
    LifecycleError,
)
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


@pytest.fixture
def adios2(context):
    eng = Adios2Engine(context)
    yield eng
    eng.close()


@pytest.fixture
def uvm(context):
    eng = UvmEngine(context)
    yield eng
    eng.close()


class TestAdios2:
    def test_roundtrip(self, adios2, context):
        buf = make_buffer(context, CKPT, seed=1)
        expected = buf.checksum()
        adios2.checkpoint(0, buf)
        out = context.device.alloc_buffer(CKPT)
        adios2.restore(0, out)
        assert out.checksum() == expected

    def test_duplicate_rejected(self, adios2, context):
        adios2.checkpoint(0, make_buffer(context, CKPT))
        with pytest.raises(LifecycleError):
            adios2.checkpoint(0, make_buffer(context, CKPT))

    def test_unknown_restore_raises(self, adios2, context):
        with pytest.raises(CheckpointNotFound):
            adios2.restore(9, make_buffer(context, CKPT))

    def test_drains_to_ssd(self, adios2, context):
        for v in range(4):
            adios2.checkpoint(v, make_buffer(context, CKPT, seed=v))
        adios2.wait_for_flushes()
        assert adios2.ssd.object_count() == 4
        assert adios2.stats()["staged_bytes"] == 0

    def test_staging_backpressure(self, adios2, context):
        """More data than staging capacity forces blocking on the drain."""
        n = 20  # 20 * 128 MiB > 2 GiB staging
        for v in range(n):
            adios2.checkpoint(v, make_buffer(context, CKPT, seed=v))
        adios2.wait_for_flushes()
        assert adios2.ssd.object_count() == n

    def test_restore_waits_for_drain(self, adios2, context):
        """BP5 steps are readable only from storage."""
        buf = make_buffer(context, CKPT, seed=2)
        adios2.checkpoint(0, buf)
        out = context.device.alloc_buffer(CKPT)
        adios2.restore(0, out)  # must block on the deferred drain
        assert adios2.ssd.contains((adios2.process_id, 0))

    def test_hints_accepted_but_ignored(self, adios2, context):
        adios2.prefetch_enqueue(0)
        adios2.prefetch_start()

    def test_recover_size(self, adios2, context):
        adios2.checkpoint(0, make_buffer(context, CKPT))
        assert adios2.recover_size(0) == CKPT

    def test_closed_rejects_ops(self, context):
        eng = Adios2Engine(context)
        eng.close()
        with pytest.raises(EngineClosedError):
            eng.checkpoint(0, make_buffer(context, CKPT))

    def test_serialization_slows_ops(self, adios2, context):
        blocked = adios2.checkpoint(0, make_buffer(context, CKPT))
        # serialization at 0.5 GiB/s alone costs 0.25 s for 128 MiB
        assert blocked >= 0.25


class TestUvmEngine:
    def test_roundtrip(self, uvm, context):
        buf = make_buffer(context, CKPT, seed=1)
        expected = buf.checksum()
        uvm.checkpoint(0, buf)
        out = context.device.alloc_buffer(CKPT)
        uvm.restore(0, out)
        assert out.checksum() == expected

    def test_duplicate_rejected(self, uvm, context):
        uvm.checkpoint(0, make_buffer(context, CKPT))
        with pytest.raises(LifecycleError):
            uvm.checkpoint(0, make_buffer(context, CKPT))

    def test_consumed_twice_rejected(self, uvm, context):
        uvm.checkpoint(0, make_buffer(context, CKPT))
        out = context.device.alloc_buffer(CKPT)
        uvm.restore(0, out)
        with pytest.raises(LifecycleError):
            uvm.restore(0, out)

    def test_history_beyond_budget_spills_to_ssd(self, uvm, context):
        sums = {}
        n = 20  # 2.5 GiB > 2 GiB host budget
        for v in range(n):
            buf = make_buffer(context, CKPT, seed=v)
            sums[v] = buf.checksum()
            uvm.checkpoint(v, buf)
        uvm.wait_for_flushes()
        out = context.device.alloc_buffer(CKPT)
        for v in range(n):
            uvm.restore(v, out)
            assert out.checksum() == sums[v]

    def test_restore_after_drop_reads_ssd(self, uvm, context):
        for v in range(20):
            uvm.checkpoint(v, make_buffer(context, CKPT, seed=v))
        uvm.wait_for_flushes()
        sources = []
        out = context.device.alloc_buffer(CKPT)
        for v in range(20):
            uvm.restore(v, out)
        sources = [e.source_level for e in uvm.recorder.restores()]
        assert "SSD" in sources  # dropped entries re-read from storage

    def test_hints_prefetch_resident_data(self, uvm, context):
        for v in range(4):
            uvm.checkpoint(v, make_buffer(context, CKPT, seed=v))
        uvm.wait_for_flushes()
        for v in range(4):
            uvm.prefetch_enqueue(v)
        uvm.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        for v in range(4):
            uvm.clock.sleep(0.05)
            uvm.restore(v, out)
        assert uvm.uvm.prefetched_bytes >= 0  # mechanism exercised

    def test_faults_counted(self, uvm, context):
        uvm.checkpoint(0, make_buffer(context, CKPT))
        uvm.uvm.synchronize()  # advise-out migration completes
        out = context.device.alloc_buffer(CKPT)
        uvm.restore(0, out)
        assert uvm.uvm.fault_count > 0  # restore faulted pages back in

    def test_corruption_detected(self, uvm, context):
        for v in range(20):
            uvm.checkpoint(v, make_buffer(context, CKPT, seed=v))
        uvm.wait_for_flushes()
        # entry 0 should have been dropped to SSD; corrupt it there
        payload, _ = uvm.ssd.get((uvm.process_id, 0))
        payload = payload.copy()  # get() returns a read-only view
        payload[0] ^= 0xFF
        uvm.ssd.put((uvm.process_id, 0), payload, 128 * MiB)
        entry = uvm._checkpoints[0]
        if entry.alloc is None:  # only meaningful when actually dropped
            with pytest.raises(IntegrityError):
                uvm.restore(0, context.device.alloc_buffer(CKPT))

    def test_stats_shape(self, uvm, context):
        uvm.checkpoint(0, make_buffer(context, CKPT))
        stats = uvm.stats()
        for key in ("checkpoints", "live_uvm_bytes", "faults", "evicted_bytes"):
            assert key in stats

    def test_closed_rejects_ops(self, context):
        eng = UvmEngine(context)
        eng.close()
        with pytest.raises(EngineClosedError):
            eng.checkpoint(0, make_buffer(context, CKPT))
