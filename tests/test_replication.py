"""Partner replication across nodes (VELOC resilience strategy)."""

import pytest

from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.units import MiB
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB


@pytest.fixture
def two_node_cluster():
    with Cluster(tiny_config(num_nodes=2, processes_per_node=1)) as c:
        yield c


class TestReplication:
    def test_copies_land_on_partner_ssd(self, two_node_cluster):
        ctxs = two_node_cluster.process_contexts()
        engine = ScoreEngine(ctxs[0], partner_replication=True)
        try:
            for v in range(3):
                engine.checkpoint(v, make_buffer(ctxs[0], CKPT, seed=v))
            engine.wait_for_flushes()
            assert engine.partner_node_id == 1
            partner_ssd = two_node_cluster.nodes[1].ssd
            for v in range(3):
                assert partner_ssd.contains((engine.process_id, v))
            assert engine.flusher.replicated == 3
        finally:
            engine.close()

    def test_noop_on_single_node(self, cluster, context):
        engine = ScoreEngine(context, partner_replication=True)
        try:
            assert engine.partner_ssd is None
            engine.checkpoint(0, make_buffer(context, CKPT))
            engine.wait_for_flushes()
        finally:
            engine.close()

    def test_survives_node_ssd_loss(self, two_node_cluster):
        """The headline scenario: the home node's SSD contents are lost; a
        replacement process recovers everything from the partner node."""
        ctxs = two_node_cluster.process_contexts()
        engine = ScoreEngine(ctxs[0], partner_replication=True)
        sums = {}
        for v in range(4):
            buf = make_buffer(ctxs[0], CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes()
        engine.close()

        # Node 0's SSD dies: drop every object.
        home_ssd = two_node_cluster.nodes[0].ssd
        for v in range(4):
            home_ssd.delete((ctxs[0].process_id, v))

        replacement = ScoreEngine(ctxs[0])
        try:
            recovered = replacement.recover_history()
            assert recovered == 4  # found on the partner's SSD
            out = ctxs[0].device.alloc_buffer(CKPT)
            for v in range(4):
                replacement.restore(v, out)
                assert out.checksum() == sums[v]
        finally:
            replacement.close()

    def test_discarded_checkpoints_not_replicated(self, two_node_cluster):
        ctxs = two_node_cluster.process_contexts()
        engine = ScoreEngine(ctxs[0], partner_replication=True, discard_consumed=True)
        try:
            engine.checkpoint(0, make_buffer(ctxs[0], CKPT))
            out = ctxs[0].device.alloc_buffer(CKPT)
            engine.restore(0, out)  # consumed + discarded immediately
            engine.wait_for_flushes()
            # Either the h2f leg was cancelled entirely, or the replication
            # stage saw the discard and skipped; never a partner copy with
            # cancelled flushes pending.
            partner_ssd = two_node_cluster.nodes[1].ssd
            if partner_ssd.contains((engine.process_id, 0)):
                # the flush won the race — the copy must then be complete
                payload, _ = partner_ssd.get((engine.process_id, 0))
                assert payload.size > 0
        finally:
            engine.close()
