"""End-to-end telemetry: trace a real RTM shot and validate the output.

One small traced run (the CLI's ``quickstart`` workload) is shared by the
whole module; the tests then check the three hard guarantees:

* every recorded FSM transition is legal per ``allowed_transitions``;
* eviction decisions carry their Algorithm-1 scores and window members;
* the exported Chrome trace re-parses with per-track monotonic timestamps.
"""

import json

import pytest

from repro.config import bench_config
from repro.core.lifecycle import CkptState, allowed_transitions
from repro.telemetry.cli import run_trace
from repro.tiers.topology import Cluster
from repro.workloads.multiproc import run_multiprocess_shot


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("traces")
    result = run_trace("quickstart", out_dir=str(out_dir), snapshots=12)
    events = [
        json.loads(line)
        for line in open(result["jsonl"])
    ]
    return result, events


class TestFsmConformance:
    def test_every_transition_is_legal(self, traced):
        _, events = traced
        fsm = [e for e in events if e["name"] == "fsm"]
        assert fsm, "traced run recorded no lifecycle transitions"
        for e in fsm:
            old = CkptState(e["args"]["from"])
            new = CkptState(e["args"]["to"])
            assert new in allowed_transitions(old), (
                f"illegal transition {old.value} -> {new.value} "
                f"for ckpt {e['args']['ckpt']} on {e['args']['level']}"
            )

    def test_per_instance_chains_are_continuous(self, traced):
        _, events = traced
        chains = {}
        for e in events:
            if e["name"] != "fsm":
                continue
            key = (e["track"], e["args"]["ckpt"], e["args"]["level"])
            chains.setdefault(key, []).append(e["args"])
        assert chains
        for key, transitions in chains.items():
            assert transitions[0]["from"] == CkptState.INIT.value, key
            for prev, cur in zip(transitions, transitions[1:]):
                # Either the chain continues, or the instance was evicted
                # and a fresh generation restarted from INIT.
                assert cur["from"] in (prev["to"], CkptState.INIT.value), key

    def test_both_lifecycle_paths_are_exercised(self, traced):
        _, events = traced
        seen = {
            (e["args"]["from"], e["args"]["to"])
            for e in events
            if e["name"] == "fsm"
        }
        assert ("init", "write_in_progress") in seen  # checkpoint path
        assert ("write_in_progress", "write_complete") in seen
        assert any(new == "consumed" for _, new in seen)  # restore path


class TestEvictionTrace:
    def test_eviction_decisions_carry_scores_and_members(self, traced):
        _, events = traced
        windows = [e for e in events if e["name"] == "evict-window"]
        assert windows, "run too small to trigger evictions"
        for e in windows:
            args = e["args"]
            assert isinstance(args["p_score"], (int, float))
            assert isinstance(args["s_score"], (int, float))
            assert args["bytes"] >= 0
            assert args["members"], "an eviction window must name its victims"
            for member in args["members"]:
                assert {"ckpt", "bytes", "state"} <= set(member)

    def test_every_window_is_followed_by_its_evictions(self, traced):
        _, events = traced
        evicted = [e["args"]["ckpt"] for e in events if e["name"] == "evict"]
        window_members = [
            m["ckpt"]
            for e in events
            if e["name"] == "evict-window"
            for m in e["args"]["members"]
        ]
        assert sorted(evicted) == sorted(window_members)


class TestFlushPrefetchSpans:
    def test_flush_stages_recorded_as_spans(self, traced):
        _, events = traced
        d2h = [e for e in events if e["name"] == "d2h"]
        h2f = [e for e in events if e["name"] == "h2f"]
        assert d2h and h2f
        for e in d2h + h2f:
            assert e["phase"] == "X"
            assert e["dur"] >= 0
            assert e["args"]["bytes"] > 0

    def test_prefetch_promotions_recorded(self, traced):
        _, events = traced
        spans = [e for e in events if e["name"] == "prefetch"]
        assert spans
        assert all(e["track"] == "p0-prefetch" for e in spans)


class TestChromeExport:
    def test_trace_json_reparses_with_monotonic_tracks(self, traced):
        result, _ = traced
        doc = json.load(open(result["trace"]))
        per_track = {}
        for e in doc["traceEvents"]:
            if e["ph"] in ("X", "i"):
                per_track.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        assert per_track
        for stamps in per_track.values():
            assert stamps == sorted(stamps)

    def test_trace_json_attaches_metrics(self, traced):
        result, _ = traced
        doc = json.load(open(result["trace"]))
        metrics = doc["otherData"]["metrics"]
        assert metrics["engine.checkpoint.ops"] == 12
        assert metrics["tier.ssd.write_ops"] > 0

    def test_summary_written(self, traced):
        result, _ = traced
        text = open(result["summary"]).read()
        assert "engine.restore.ops" in text
        assert "dropped" in text


class TestDisabledTelemetry:
    def test_untraced_run_emits_zero_events_but_live_metrics(self):
        from repro.harness.approaches import make_engine_factory
        from repro.telemetry.cli import _build_specs
        from repro.workloads.patterns import RestoreOrder

        cfg = bench_config(processes_per_node=1)  # telemetry off by default
        specs = _build_specs("quickstart", cfg, 6, 1, RestoreOrder.REVERSE, seed=7)
        with Cluster(cfg) as cluster:
            run_multiprocess_shot(cluster, make_engine_factory("score"), specs)
            assert not cluster.telemetry.enabled
            assert cluster.telemetry.bus.emitted == 0
            assert cluster.telemetry.bus.snapshot() == []
            metrics = cluster.telemetry.registry.snapshot()
        assert metrics["engine.checkpoint.ops"] == 6
        assert metrics["engine.restore.ops"] == 6
