"""Shot driver and multi-process runner."""

import pytest

from repro.core.engine import ScoreEngine
from repro.errors import ConfigError
from repro.tiers.topology import Cluster
from repro.workloads.multiproc import run_multiprocess_shot
from repro.workloads.patterns import RestoreOrder, restore_order
from repro.workloads.rtm import uniform_trace, variable_trace
from repro.workloads.shot import HintMode, ShotSpec, run_shot
from repro.util.units import MiB
from tests.conftest import tiny_config

N = 8
SIZE = 128 * MiB


def make_spec(config, hint_mode=HintMode.ALL, wait=False, order=None, n=N):
    trace = uniform_trace(config.scale, num_snapshots=n, size=SIZE)
    order = order or restore_order(RestoreOrder.REVERSE, n)
    return ShotSpec(
        trace=trace,
        restore_order=order,
        hint_mode=hint_mode,
        compute_interval=0.01,
        wait_for_flush=wait,
    )


class TestShotSpec:
    def test_restore_order_must_be_permutation(self, config):
        trace = uniform_trace(config.scale, num_snapshots=4, size=SIZE)
        with pytest.raises(ConfigError):
            ShotSpec(trace=trace, restore_order=[0, 1, 2])
        with pytest.raises(ConfigError):
            ShotSpec(trace=trace, restore_order=[0, 1, 2, 2])

    def test_negative_interval_rejected(self, config):
        trace = uniform_trace(config.scale, num_snapshots=2, size=SIZE)
        with pytest.raises(ConfigError):
            ShotSpec(trace=trace, restore_order=[0, 1], compute_interval=-1)

    def test_string_hint_mode_coerced(self, config):
        trace = uniform_trace(config.scale, num_snapshots=2, size=SIZE)
        spec = ShotSpec(trace=trace, restore_order=[1, 0], hint_mode="single")
        assert spec.hint_mode is HintMode.SINGLE


class TestRunShot:
    @pytest.mark.parametrize("hint_mode", list(HintMode))
    def test_all_hint_modes_complete(self, context, hint_mode):
        spec = make_spec(context.config, hint_mode=hint_mode)
        engine = ScoreEngine(context)
        try:
            result = run_shot(engine, spec)
        finally:
            engine.close()
        assert len(result.recorder.checkpoints()) == N
        assert len(result.recorder.restores()) == N
        assert result.error is None

    def test_wait_variant_flushes_first(self, context):
        spec = make_spec(context.config, wait=True)
        engine = ScoreEngine(context)
        try:
            result = run_shot(engine, spec)
        finally:
            engine.close()
        assert result.flush_wait_seconds >= 0.0
        assert result.engine_stats["ssd_objects"] == N

    def test_phases_reported(self, context):
        engine = ScoreEngine(context)
        try:
            result = run_shot(engine, make_spec(context.config))
        finally:
            engine.close()
        assert result.checkpoint_phase_seconds > 0
        assert result.restore_phase_seconds > 0

    def test_variable_trace_shot(self, context):
        trace = variable_trace(
            context.config.scale, rank=0, seed=1, num_snapshots=N, total_bytes=N * SIZE
        )
        spec = ShotSpec(
            trace=trace,
            restore_order=restore_order(RestoreOrder.IRREGULAR, N, seed=1),
            hint_mode=HintMode.ALL,
            compute_interval=0.01,
        )
        engine = ScoreEngine(context)
        try:
            result = run_shot(engine, spec)
        finally:
            engine.close()
        assert len(result.recorder.restores()) == N

    def test_iteration_hook_called(self, context):
        calls = []
        engine = ScoreEngine(context)
        try:
            run_shot(engine, make_spec(context.config), iteration_hook=lambda p, i: calls.append((p, i)))
        finally:
            engine.close()
        assert calls.count(("checkpoint", 0)) == 1
        assert sum(1 for p, _ in calls if p == "restore") == N


class TestMultiprocess:
    def test_parallel_two_processes(self):
        cfg = tiny_config(processes_per_node=2)
        with Cluster(cfg) as cluster:
            specs = [make_spec(cfg) for _ in range(2)]
            results = run_multiprocess_shot(cluster, lambda ctx: ScoreEngine(ctx), specs)
        assert len(results) == 2
        assert all(r.error is None for r in results)
        assert results[0].process_id != results[1].process_id

    def test_tightly_coupled_barrier(self):
        cfg = tiny_config(processes_per_node=2)
        with Cluster(cfg) as cluster:
            specs = [make_spec(cfg) for _ in range(2)]
            results = run_multiprocess_shot(
                cluster, lambda ctx: ScoreEngine(ctx), specs, tightly_coupled=True
            )
        assert all(len(r.recorder.restores()) == N for r in results)

    def test_spec_count_mismatch_rejected(self):
        cfg = tiny_config(processes_per_node=2)
        with Cluster(cfg) as cluster:
            with pytest.raises(ConfigError):
                run_multiprocess_shot(cluster, lambda ctx: ScoreEngine(ctx), [make_spec(cfg)])

    def test_tight_coupling_needs_equal_lengths(self):
        cfg = tiny_config(processes_per_node=2)
        with Cluster(cfg) as cluster:
            specs = [make_spec(cfg, n=4), make_spec(cfg, n=6)]
            with pytest.raises(ConfigError):
                run_multiprocess_shot(
                    cluster, lambda ctx: ScoreEngine(ctx), specs, tightly_coupled=True
                )

    def test_worker_error_reraised(self):
        cfg = tiny_config(processes_per_node=2)

        class Boom(RuntimeError):
            pass

        def bad_factory(ctx):
            engine = ScoreEngine(ctx)
            original = engine.checkpoint

            def failing(ckpt_id, buffer):
                if ctx.process_id == 1 and ckpt_id == 2:
                    raise Boom("injected")
                return original(ckpt_id, buffer)

            engine.checkpoint = failing
            return engine

        with Cluster(cfg) as cluster:
            specs = [make_spec(cfg) for _ in range(2)]
            with pytest.raises(Boom):
                run_multiprocess_shot(cluster, bad_factory, specs)
