"""Property: peer-SSD restores are bit-identical to PFS restores.

The fabric may change *where* a demand restore reads from — a ring
successor's SSD over the interconnect instead of the shared PFS — but
never *what* it reads: for any payload and any ring position, the bytes
a peer read returns, the bytes the PFS holds, and the checksum the
application wrote must all agree.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig
from repro.util.rng import make_rng
from repro.util.units import MiB
from tests.conftest import tiny_config


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size_mib=st.sampled_from([16, 64, 129]),
    peer_reads=st.booleans(),
)
def test_peer_and_pfs_restores_are_bit_identical(seed, size_mib, peer_reads):
    size = size_mib * MiB
    cfg = tiny_config(
        num_nodes=3,
        cluster=ClusterConfig(enabled=True, peer_reads=peer_reads),
    )
    with ClusterTopology(cfg, engine_kwargs={"flush_to_pfs": True}) as topo:
        session = topo.service.connect("prop")
        buf = session.engine.device.alloc_buffer(size)
        buf.fill_random(make_rng(seed, "cluster-prop"))
        want = buf.checksum()
        session.submit(0, buf)
        for engine in topo.engines:
            engine.wait_for_flushes(timeout=600.0)

        key = (session.engine.process_id, 0)
        pfs_payload = topo.cluster.pfs._read_payload(key)

        # The replica a peer read serves is byte-for-byte the PFS blob.
        peer = topo.fabric.peer_source(2, key)
        if peer_reads:
            assert peer is not None
            payload, _ = peer.get(key)
            assert np.array_equal(payload, pfs_payload)
        else:
            assert peer is None

        # End-to-end: a cross-node demand restore (peer SSD or PFS,
        # whichever the config routes to) returns the submitted checksum.
        target = topo.engines[2]
        out = target.device.alloc_buffer(size)
        session.restore(0, out, engine=target)
        assert out.checksum() == want

        snap = topo.telemetry.registry.snapshot()
        assert snap["cluster.peer.reads"] == (2 if peer_reads else 0)
        assert snap["cluster.peer.fallbacks"] == 0
