"""Page-granular UVM simulation."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.errors import UvmError
from repro.simgpu.bandwidth import Link
from repro.simgpu.uvm import UvmSpace
from repro.util.rng import make_rng
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB, time_scale=0.002)


@pytest.fixture
def uvm():
    clock = VirtualClock(time_scale=0.002)
    spec = HardwareSpec()
    space = UvmSpace(
        device_id=0,
        device_capacity=8 * MiB,  # 4 pages of 2 MiB
        spec=spec,
        scale=SCALE,
        clock=clock,
        d2h_link=Link("d2h", spec.d2h_bandwidth, clock),
        h2d_link=Link("h2d", spec.h2d_bandwidth, clock),
    )
    yield space
    space.close()


def _payload(nominal, rng_label="p"):
    return make_rng(1, rng_label).integers(0, 256, SCALE.payload_bytes(nominal), dtype=np.uint8)


class TestAllocation:
    def test_allocate_pages(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        assert alloc.num_pages == 2
        assert alloc.device_pages == 0

    def test_duplicate_name_rejected(self, uvm):
        uvm.allocate("a", 2 * MiB)
        with pytest.raises(UvmError):
            uvm.allocate("a", 2 * MiB)

    def test_double_free_rejected(self, uvm):
        alloc = uvm.allocate("a", 2 * MiB)
        uvm.free(alloc)
        with pytest.raises(UvmError):
            uvm.free(alloc)

    def test_use_after_free_rejected(self, uvm):
        alloc = uvm.allocate("a", 2 * MiB)
        uvm.free(alloc)
        with pytest.raises(UvmError):
            uvm.write_from_device(alloc, _payload(2 * MiB))


class TestResidency:
    def test_write_makes_resident(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        assert alloc.device_pages == alloc.num_pages
        assert uvm.device_resident_bytes == 4 * MiB

    def test_read_roundtrip(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        data = _payload(4 * MiB)
        uvm.write_from_device(alloc, data)
        out, _ = uvm.read_to_device(alloc)
        assert np.array_equal(out[: data.size], data)

    def test_resident_read_is_free(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        _, seconds = uvm.read_to_device(alloc)
        assert seconds == 0.0

    def test_fault_after_migration_costs_time(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        uvm._migrate_to_host(alloc)
        assert alloc.device_pages == 0
        _, seconds = uvm.read_to_device(alloc)
        assert seconds > 0.0
        assert uvm.fault_count > 0

    def test_capacity_eviction_lru(self, uvm):
        a = uvm.allocate("a", 4 * MiB)
        b = uvm.allocate("b", 4 * MiB)
        c = uvm.allocate("c", 4 * MiB)
        uvm.write_from_device(a, _payload(4 * MiB))
        uvm.write_from_device(b, _payload(4 * MiB))
        uvm.write_from_device(c, _payload(4 * MiB))  # evicts LRU = a
        assert a.device_pages == 0
        assert b.device_pages == b.num_pages
        assert c.device_pages == c.num_pages
        assert uvm.evicted_bytes == 4 * MiB

    def test_eviction_prefers_host_advised(self, uvm):
        a = uvm.allocate("a", 4 * MiB)
        b = uvm.allocate("b", 4 * MiB)
        uvm.write_from_device(a, _payload(4 * MiB))
        uvm.write_from_device(b, _payload(4 * MiB))
        uvm.synchronize()
        uvm.advise_preferred_location(b, "host")
        uvm.synchronize()  # background migrate-out of b
        c = uvm.allocate("c", 4 * MiB)
        uvm.write_from_device(c, _payload(4 * MiB))
        # b was advised out already, so a should still be resident.
        assert a.device_pages == a.num_pages

    def test_oversized_allocation_rejected_on_touch(self, uvm):
        alloc = uvm.allocate("big", 16 * MiB)  # 8 pages > 4-page device
        with pytest.raises(UvmError):
            uvm.write_from_device(alloc, _payload(16 * MiB))


class TestAdviceAndPrefetch:
    def test_bad_advice_rejected(self, uvm):
        alloc = uvm.allocate("a", 2 * MiB)
        with pytest.raises(UvmError):
            uvm.advise_preferred_location(alloc, "moon")

    def test_advise_host_migrates_out(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        uvm.advise_preferred_location(alloc, "host")
        uvm.synchronize()
        assert alloc.device_pages == 0

    def test_prefetch_to_device(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        uvm._migrate_to_host(alloc)
        uvm.prefetch_async(alloc, "device").wait(timeout=5)
        assert alloc.device_pages == alloc.num_pages
        assert uvm.prefetched_bytes == 4 * MiB
        # Prefetched pages read for free (no fault).
        _, seconds = uvm.read_to_device(alloc)
        assert seconds == 0.0

    def test_prefetch_bad_destination_rejected(self, uvm):
        alloc = uvm.allocate("a", 2 * MiB)
        with pytest.raises(UvmError):
            uvm.prefetch_async(alloc, "moon")

    def test_free_drops_without_migration(self, uvm):
        alloc = uvm.allocate("a", 4 * MiB)
        uvm.write_from_device(alloc, _payload(4 * MiB))
        evicted_before = uvm.evicted_bytes
        uvm.free(alloc)
        assert uvm.evicted_bytes == evicted_before
        assert uvm.device_resident_bytes == 0
