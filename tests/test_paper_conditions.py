"""The five conditions of the paper's problem formulation (Section 2),
each verified against the runtime directly.

(1) a checkpoint request blocks only until the data is in the GPU cache;
(2) a checkpoint can be read back while its flushes are still pending;
(3) the runtime prefetches according to the restore order;
(4) a prefetched checkpoint is not evicted before it is consumed;
(5) pending flushes of a discarded (consumed) checkpoint need not complete.
"""


from repro.core.engine import ScoreEngine
from repro.tiers.base import TierLevel
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


class TestCondition1:
    def test_checkpoint_returns_before_flush_completes(self, engine, context):
        """Blocking time excludes the asynchronous flush cascade."""
        blocked = engine.checkpoint(0, make_buffer(context, CKPT))
        record = engine.catalog.get(0)
        # At return time the slower tiers may not hold the data yet.
        assert record.peek(TierLevel.GPU).has_copy
        # The D2D copy of 128 MiB at 1 TB/s is ~0.12 ms; blocking stays far
        # below the ~23 ms SSD leg even with scheduling noise on top.
        assert blocked < 0.015

    def test_flush_continues_after_return(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        assert engine.catalog.get(0).durable_level is TierLevel.SSD


class TestCondition2:
    def test_read_back_while_flush_pending(self, engine, context):
        """The write-path instance serves the restore (crossover edge)."""
        buf = make_buffer(context, CKPT, seed=3)
        expected = buf.checksum()
        engine.checkpoint(0, buf)
        out = context.device.alloc_buffer(CKPT)
        engine.restore(0, out)  # no wait_for_flushes in between
        assert out.checksum() == expected
        # And the flush still completes for the (non-discarded) checkpoint.
        engine.wait_for_flushes()
        assert engine.ssd.contains(engine.store_key(engine.catalog.get(0)))


class TestCondition3:
    def test_prefetch_follows_restore_order(self, engine, context):
        n = 12
        for v in range(n):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        order = list(reversed(range(n)))
        for v in order:
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        engine.clock.sleep(2.0)  # let the prefetcher stage the head
        from repro.metrics.recorder import OpKind

        prefetched = [e.ckpt_id for e in engine.recorder.of_kind(OpKind.PREFETCH)]
        assert prefetched, "prefetcher made no progress"
        # First promotions target the head of the restore order.
        head = set(order[:6])
        assert set(prefetched[:2]) <= head


class TestCondition4:
    def test_prefetched_pinned_until_consumed(self, engine, context):
        n = 12
        for v in range(n):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        for v in range(n):
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        engine.clock.sleep(2.0)
        with engine.monitor:
            pinned = [
                frag.record.ckpt_id
                for frag in engine.gpu_cache.table.fragments()
                if not frag.is_gap
                and frag.record.peek(TierLevel.GPU) is not None
                and frag.record.peek(TierLevel.GPU).pinned
            ]
        assert pinned, "nothing prefetched onto the GPU cache"
        # Writing more checkpoints must not evict the pinned extents.
        for v in range(n, n + 4):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        with engine.monitor:
            still_there = [
                cid for cid in pinned if engine.gpu_cache.table.contains(cid)
            ]
        assert still_there == pinned


class TestCondition5:
    def test_discarded_flushes_abandoned(self, context):
        eng = ScoreEngine(context, discard_consumed=True)
        try:
            sums = {}
            for v in range(4):
                buf = make_buffer(context, CKPT, seed=v)
                sums[v] = buf.checksum()
                eng.checkpoint(v, buf)
            out = context.device.alloc_buffer(CKPT)
            for v in range(4):
                eng.restore(v, out)
                assert out.checksum() == sums[v]
                assert eng.catalog.get(v).cancel_flush.is_set()
            eng.wait_for_flushes()  # must settle without errors
        finally:
            eng.close()

    def test_unconsumed_checkpoints_still_persist(self, context):
        """Discard applies only to consumed checkpoints; the rest flush."""
        eng = ScoreEngine(context, discard_consumed=True)
        try:
            for v in range(4):
                eng.checkpoint(v, make_buffer(context, CKPT, seed=v))
            out = context.device.alloc_buffer(CKPT)
            eng.restore(0, out)  # only v0 consumed
            eng.wait_for_flushes()
            for v in (1, 2, 3):
                assert eng.ssd.contains((eng.process_id, v))
        finally:
            eng.close()


class TestHintAdvisoriness:
    """Hints are advisory: the order may deviate (Section 4.1.1)."""

    def test_full_deviation_still_correct(self, engine, context):
        n = 10
        sums = {}
        for v in range(n):
            buf = make_buffer(context, CKPT, seed=v)
            sums[v] = buf.checksum()
            engine.checkpoint(v, buf)
        engine.wait_for_flushes()
        for v in range(n):  # hint sequential...
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        for v in reversed(range(n)):  # ...restore in reverse
            engine.restore(v, out)
            assert out.checksum() == sums[v]
        # Deviation may force-evict prefetched extents; count is sane.
        assert engine.gpu_cache.forced_evictions >= 0
