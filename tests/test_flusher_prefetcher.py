"""Flush cascade and prefetcher mechanics."""


from repro.core.engine import ScoreEngine
from repro.core.lifecycle import CkptState
from repro.tiers.base import TierLevel
from repro.util.units import MiB
from tests.conftest import make_buffer

CKPT = 128 * MiB


class TestFlusher:
    def test_states_walk_the_cascade(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        record = engine.catalog.get(0)
        assert record.peek(TierLevel.GPU).state is CkptState.FLUSHED
        assert record.peek(TierLevel.HOST).state is CkptState.FLUSHED
        assert record.durable_level is TierLevel.SSD
        assert not record.peek(TierLevel.GPU).flush_pending
        assert not record.peek(TierLevel.HOST).flush_pending

    def test_flush_events_recorded(self, engine, context):
        from repro.metrics.recorder import OpKind

        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        flushes = engine.recorder.of_kind(OpKind.FLUSH)
        assert len(flushes) == 1
        assert flushes[0].nominal_bytes == CKPT

    def test_drain_is_idempotent(self, engine, context):
        engine.checkpoint(0, make_buffer(context, CKPT))
        engine.wait_for_flushes()
        engine.wait_for_flushes()

    def test_discarded_checkpoint_flush_abandoned(self, context):
        eng = ScoreEngine(context, discard_consumed=True)
        try:
            for v in range(3):
                eng.checkpoint(v, make_buffer(context, CKPT, seed=v))
            out = context.device.alloc_buffer(CKPT)
            for v in range(3):
                eng.restore(v, out)
            eng.wait_for_flushes()
            # at least some flush legs should have been cancelled/abandoned
            assert eng.flusher.abandoned >= 0  # no crash; counter sane
            stats = eng.stats()
            assert stats["abandoned_flushes"] == eng.flusher.abandoned
        finally:
            eng.close()

    def test_flush_to_pfs_opt_in(self, context):
        eng = ScoreEngine(context, flush_to_pfs=True)
        try:
            eng.checkpoint(0, make_buffer(context, CKPT))
            eng.wait_for_flushes()
            record = eng.catalog.get(0)
            assert record.durable_level is TierLevel.PFS
            assert eng.pfs.contains(eng.store_key(record))
        finally:
            eng.close()


class TestPrefetcher:
    def test_idle_until_started(self, engine, context):
        for v in range(4):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        for v in range(4):
            engine.prefetch_enqueue(v)
        engine.wait_for_flushes()
        engine.clock.sleep(0.5)
        assert engine.prefetcher.promotions == 0  # prefetch_start not called

    def test_budget_limits_pinned_bytes(self, context):
        eng = ScoreEngine(context, prefetch_budget_fraction=0.5)
        try:
            for v in range(16):
                eng.checkpoint(v, make_buffer(context, CKPT, seed=v))
            eng.wait_for_flushes()
            for v in range(16):
                eng.prefetch_enqueue(v)
            eng.prefetch_start()
            eng.clock.sleep(3.0)  # let it stage up to the budget
            budget = 0.5 * eng.gpu_cache.table.capacity
            assert eng.gpu_cache.pinned_bytes() <= budget
        finally:
            eng.close()

    def test_prefetch_events_record_source(self, engine, context):
        from repro.metrics.recorder import OpKind

        for v in range(4):
            engine.checkpoint(v, make_buffer(context, CKPT, seed=v))
        engine.wait_for_flushes()
        for v in range(4):
            engine.prefetch_enqueue(v)
        engine.prefetch_start()
        out = context.device.alloc_buffer(CKPT)
        for v in range(4):
            engine.clock.sleep(0.05)
            engine.restore(v, out)
        events = engine.recorder.of_kind(OpKind.PREFETCH)
        for e in events:
            assert e.source_level in ("HOST", "SSD", "PFS")

    def test_stop_terminates_thread(self, context):
        eng = ScoreEngine(context)
        eng.close()
        assert not eng.prefetcher._thread.is_alive()
