"""Shared fixtures: tiny, fast configurations for unit/integration tests.

Tests run with an aggressive time scale (correctness does not depend on
timing fidelity) and small caches so eviction paths are exercised with a
handful of checkpoints.
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.config import CacheConfig, RuntimeConfig, ScaleModel
from repro.core.engine import ScoreEngine
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import GiB, KiB, MiB

#: One nominal second lasts 2 ms; payloads are 1/512Ki of nominal.
TEST_SCALE = ScaleModel(data_scale=512 * KiB, time_scale=0.002, alignment=512 * KiB)


def tiny_config(**changes) -> RuntimeConfig:
    """1 node, paper hardware, small caches (4-slot GPU, 16-slot host for
    128 MiB checkpoints), no allocation-cost simulation."""
    cfg = RuntimeConfig(
        scale=TEST_SCALE,
        cache=CacheConfig(gpu_cache_size=512 * MiB, host_cache_size=2 * GiB),
        charge_allocation_cost=False,
        processes_per_node=1,
    )
    if changes:
        cfg = cfg.with_(**changes)
    return cfg


@pytest.fixture
def config():
    return tiny_config()


@pytest.fixture
def cluster(config):
    with Cluster(config) as c:
        yield c


@pytest.fixture
def context(cluster):
    return cluster.process_contexts()[0]


@pytest.fixture
def engine(context):
    eng = ScoreEngine(context)
    yield eng
    eng.close()


@pytest.fixture
def clock():
    return VirtualClock(time_scale=0.002)


@pytest.fixture
def rng():
    return make_rng(1234, "tests")


def make_buffer(context, nominal_size=128 * MiB, seed=0):
    """An application device buffer filled with seeded random bytes."""
    buf = context.device.alloc_buffer(nominal_size)
    buf.fill_random(make_rng(seed, "buffer"))
    return buf
