"""Unit tests for the causal op-trace layer (:mod:`repro.telemetry.causal`).

An :class:`OpTrace` must *tile* its operation's window: every stage first
back-fills the gap since the op's cursor as a ``wait`` span, so the
analyzer's accounting-completeness invariant holds by construction.  These
tests drive the cursor machinery with a hand-stepped clock so the tiling
is checked exactly, without virtual-time jitter.
"""

import pytest

from repro.telemetry.bus import TraceBus
from repro.telemetry.causal import (
    CAT_QUEUE,
    CAT_RETRY,
    CAT_TRANSFER,
    CATEGORIES,
    CATEGORY_PRIORITY,
    NULL_OP,
    OpTracer,
    checkpoint_op_id,
    parse_op_id,
    prefetch_op_id,
    restore_op_id,
)


class ManualClock:
    """A clock the test advances by hand (duck-types VirtualClock.now)."""

    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_bus(enabled=True) -> TraceBus:
    return TraceBus(ManualClock(), enabled=enabled)


# -- op-id grammar ------------------------------------------------------------
def test_op_id_roundtrip():
    assert parse_op_id(checkpoint_op_id(3, 17)) == ("checkpoint", 3, 17)
    assert parse_op_id(restore_op_id(0, 0)) == ("restore", 0, 0)
    assert parse_op_id(prefetch_op_id(12, 345)) == ("prefetch", 12, 345)


@pytest.mark.parametrize(
    "bad",
    ["", "x0:1", "c0", "c0:", "c:1", "c-1:2", "cc0:1", "c0:1:2", "C0:1", "c0 1"],
)
def test_parse_op_id_rejects_malformed(bad):
    assert parse_op_id(bad) is None


def test_category_priority_covers_taxonomy():
    assert set(CATEGORY_PRIORITY) == set(CATEGORIES)
    # Distinct ranks: the sweep's tie-break must be deterministic.
    assert len(set(CATEGORY_PRIORITY.values())) == len(CATEGORY_PRIORITY)


# -- gating -------------------------------------------------------------------
def test_disabled_tracer_hands_out_null_op():
    bus = make_bus(enabled=True)
    tracer = OpTracer(bus, process_id=0, enabled=False)
    assert tracer.checkpoint(1, "app") is NULL_OP
    assert tracer.restore(1, "app") is NULL_OP
    assert tracer.prefetch(1, "app") is NULL_OP
    # Enabled flag but a silent bus must also gate off.
    silent = OpTracer(make_bus(enabled=False), process_id=0, enabled=True)
    assert silent.checkpoint(1, "app") is NULL_OP


def test_null_op_is_inert():
    assert NULL_OP.op_id is None
    assert NULL_OP.parent_id is None
    assert not NULL_OP.enabled
    with NULL_OP.stage("anything", CAT_TRANSFER) as st:
        st.add(foo=1)
    NULL_OP.fill("gap")
    NULL_OP.instant("mark")


def test_op_ids_and_parent_links():
    bus = make_bus()
    tracer = OpTracer(bus, process_id=2, enabled=True)
    ckpt = tracer.checkpoint(5, "p2-app")
    assert ckpt.op_id == "c2:5"
    assert ckpt.parent_id is None
    rest = tracer.restore(5, "p2-app")
    assert rest.op_id == "r2:5"
    assert rest.parent_id == "c2:5"
    pref = tracer.prefetch(5, "p2-prefetch")
    assert pref.op_id == "f2:5"
    assert pref.parent_id == "c2:5"


# -- cursor tiling ------------------------------------------------------------
def test_stage_backfills_gap_and_times_body():
    bus = make_bus()
    clock = bus.clock
    op = OpTracer(bus, 0, enabled=True).checkpoint(0, "app")
    clock.advance(1.0)  # queueing before the stage runs
    with op.stage("copy", CAT_TRANSFER, tier="pcie"):
        clock.advance(2.0)  # the stage body
    events = bus.snapshot()
    assert [e.name for e in events] == ["wait", "copy"]
    wait, copy = events
    assert (wait.ts, wait.dur, wait.category) == (0.0, 1.0, CAT_QUEUE)
    assert (copy.ts, copy.dur, copy.category) == (1.0, 2.0, CAT_TRANSFER)
    assert copy.args["tier"] == "pcie"
    assert all(e.op_id == "c0:0" for e in events)


def test_spans_tile_the_window_without_gaps():
    bus = make_bus()
    clock = bus.clock
    op = OpTracer(bus, 0, enabled=True).checkpoint(7, "app")
    with op.stage("a", CAT_TRANSFER):
        clock.advance(0.5)
    clock.advance(0.25)
    with op.stage("b", CAT_RETRY):
        clock.advance(1.0)
    clock.advance(0.125)
    op.fill("tail")
    events = bus.snapshot()
    # Sorted by start, consecutive spans must abut exactly.
    spans = sorted(events, key=lambda e: e.ts)
    assert spans[0].ts == op.start
    for prev, nxt in zip(spans, spans[1:]):
        assert prev.ts + prev.dur == pytest.approx(nxt.ts)
    assert spans[-1].ts + spans[-1].dur == pytest.approx(clock.now())


def test_fill_emits_nothing_when_cursor_is_current():
    bus = make_bus()
    op = OpTracer(bus, 0, enabled=True).checkpoint(0, "app")
    op.fill("gap")  # no time has passed
    assert len(bus) == 0
    bus.clock.advance(0.5)
    op.fill("gap")
    op.fill("gap")  # second call: cursor already advanced
    assert len(bus) == 1


def test_external_span_is_overlapped_by_next_fill_and_sweep_resolves():
    """An externally-timed span does NOT move the cursor.

    Call sites deliberately leave the cursor where it was (advancing it
    after the span's ``__exit__`` would overshoot by the clock-read
    latency and leak an unattributable sliver per span).  The next fill
    back-fills *over* the span; the attribution sweep's innermost-wins
    rule hands the span its own interval, so coverage stays complete.
    """
    from repro.analysis.attribution import attribute_op
    from repro.analysis.dag import build_dag

    bus = make_bus()
    clock = bus.clock
    op = OpTracer(bus, 0, enabled=True).checkpoint(0, "app")
    with bus.span("d2h", "p0-flush-d2h", op_id=op.op_id, category=CAT_TRANSFER):
        clock.advance(3.0)
    clock.advance(1.0)
    op.fill("after")
    after = [e for e in bus.snapshot() if e.name == "after"]
    assert len(after) == 1
    # The fill covers from the pre-span cursor, overlapping the span.
    assert (after[0].ts, after[0].dur) == (0.0, 4.0)
    dag = build_dag(bus.snapshot())
    attr = attribute_op(dag.ops["c0:0"])
    assert attr.coverage == pytest.approx(1.0)
    assert attr.by_category[CAT_TRANSFER] == pytest.approx(3.0)
    assert attr.by_category[CAT_QUEUE] == pytest.approx(1.0)


def test_stage_add_attaches_args():
    bus = make_bus()
    op = OpTracer(bus, 0, enabled=True).checkpoint(0, "app")
    with op.stage("put", CAT_TRANSFER) as st:
        bus.clock.advance(0.1)
        st.add(bytes=4096)
    (event,) = bus.snapshot()
    assert event.args["bytes"] == 4096


def test_instant_carries_op_id():
    bus = make_bus()
    op = OpTracer(bus, 1, enabled=True).checkpoint(9, "app")
    op.instant("durable", tier="ssd")
    (event,) = bus.snapshot()
    assert event.phase == "i"
    assert event.op_id == "c1:9"
    assert event.args["tier"] == "ssd"
