"""Interval arithmetic (repro.util.intervals), incl. property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalSet


class TestInterval:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_empty(self):
        assert Interval(5, 5).is_empty()

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 3)

    def test_contains(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(4)
        assert not iv.contains(5) and not iv.contains(1)

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))  # half-open

    def test_touches_adjacent(self):
        assert Interval(0, 5).touches(Interval(5, 9))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)

    def test_intersection_disjoint_is_empty(self):
        assert Interval(0, 2).intersection(Interval(5, 9)).is_empty()

    def test_union_touching(self):
        assert Interval(0, 5).union_touching(Interval(5, 9)) == Interval(0, 9)

    def test_union_disjoint_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 2).union_touching(Interval(5, 9))


class TestIntervalSet:
    def test_empty(self):
        s = IntervalSet()
        assert len(s) == 0 and not s and s.total_length() == 0

    def test_add_single(self):
        s = IntervalSet()
        s.add(Interval(2, 5))
        assert s.as_tuples() == [(2, 5)]

    def test_add_coalesces_adjacent(self):
        s = IntervalSet([Interval(0, 5)])
        s.add(Interval(5, 9))
        assert s.as_tuples() == [(0, 9)]

    def test_add_coalesces_overlapping(self):
        s = IntervalSet([Interval(0, 5), Interval(8, 12)])
        s.add(Interval(4, 9))
        assert s.as_tuples() == [(0, 12)]

    def test_add_keeps_disjoint(self):
        s = IntervalSet([Interval(0, 2)])
        s.add(Interval(5, 7))
        assert s.as_tuples() == [(0, 2), (5, 7)]

    def test_add_empty_noop(self):
        s = IntervalSet([Interval(0, 2)])
        s.add(Interval(3, 3))
        assert s.as_tuples() == [(0, 2)]

    def test_remove_middle_splits(self):
        s = IntervalSet([Interval(0, 10)])
        s.remove(Interval(3, 6))
        assert s.as_tuples() == [(0, 3), (6, 10)]

    def test_remove_across_intervals(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 10)])
        s.remove(Interval(2, 8))
        assert s.as_tuples() == [(0, 2), (8, 10)]

    def test_remove_nothing_stored(self):
        s = IntervalSet([Interval(0, 2)])
        s.remove(Interval(5, 9))
        assert s.as_tuples() == [(0, 2)]

    def test_contains(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 10)])
        assert s.contains(0) and s.contains(7)
        assert not s.contains(4) and not s.contains(5)

    def test_covers(self):
        s = IntervalSet([Interval(0, 10)])
        assert s.covers(Interval(2, 8))
        assert not s.covers(Interval(8, 12))
        assert s.covers(Interval(5, 5))  # empty always covered

    def test_overlapping(self):
        s = IntervalSet([Interval(0, 4), Interval(6, 10), Interval(20, 30)])
        assert s.overlapping(Interval(3, 7)) == [Interval(0, 4), Interval(6, 10)]
        assert s.overlapping(Interval(11, 19)) == []

    def test_first_fit(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 12)])
        assert s.first_fit(4) == Interval(5, 9)
        assert s.first_fit(2) == Interval(0, 2)
        assert s.first_fit(100) is None

    def test_first_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            IntervalSet().first_fit(0)

    def test_copy_is_independent(self):
        s = IntervalSet([Interval(0, 4)])
        c = s.copy()
        c.add(Interval(10, 12))
        assert s.as_tuples() == [(0, 4)]

    def test_equality(self):
        assert IntervalSet([Interval(0, 4)]) == IntervalSet([Interval(0, 2), Interval(2, 4)])


@st.composite
def interval_ops(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.integers(0, 200),
                st.integers(0, 60),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return [(op, start, start + length) for op, start, length in ops]


class TestIntervalSetProperties:
    @given(interval_ops())
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_bitset(self, ops):
        """The interval set behaves exactly like a set of integer points."""
        s = IntervalSet()
        naive = set()
        for op, start, stop in ops:
            if op == "add":
                s.add(Interval(start, stop))
                naive |= set(range(start, stop))
            else:
                s.remove(Interval(start, stop))
                naive -= set(range(start, stop))
        assert s.total_length() == len(naive)
        # invariants: sorted, disjoint, coalesced
        tuples = s.as_tuples()
        for (a1, b1), (a2, b2) in zip(tuples, tuples[1:]):
            assert b1 < a2, "intervals must stay disjoint and non-adjacent"
        for a, b in tuples:
            assert all(p in naive for p in range(a, b))

    @given(interval_ops(), st.integers(0, 260))
    @settings(max_examples=60, deadline=None)
    def test_contains_matches_naive(self, ops, probe):
        s = IntervalSet()
        naive = set()
        for op, start, stop in ops:
            if op == "add":
                s.add(Interval(start, stop))
                naive |= set(range(start, stop))
            else:
                s.remove(Interval(start, stop))
                naive -= set(range(start, stop))
        assert s.contains(probe) == (probe in naive)
