"""Algorithm 1: gap-aware sliding-window eviction selection."""

import math


from repro.core.alloctable import AllocTable, Fragment
from repro.core.catalog import CheckpointRecord
from repro.core.scoring import FragmentCost, ScorePolicy, make_cost_fn


def rec(ckpt_id, size=10):
    return CheckpointRecord(ckpt_id, size, size, 0)


def build_table(entries, capacity=100):
    """entries: list of (ckpt_id, size, offset) — rest is gaps."""
    t = AllocTable(capacity)
    for ckpt_id, size, offset in entries:
        t.insert(rec(ckpt_id, size), size, offset)
    return t


def costs_from(p_map, s_map=None, barriers=()):
    """Cost function keyed by ckpt id; gaps get (0, high)."""
    s_map = s_map or {}

    def cost_of(frag: Fragment) -> FragmentCost:
        if frag.is_gap:
            return FragmentCost(p=0.0, s=1000.0, barrier=False)
        cid = frag.record.ckpt_id
        return FragmentCost(
            p=p_map.get(cid, 0.0),
            s=float(s_map.get(cid, 0)),
            barrier=cid in barriers,
        )

    return cost_of


POLICY = ScorePolicy()


class TestSelection:
    def test_pure_gap_window(self):
        t = build_table([(1, 10, 0)])  # gap [10, 100)
        w = POLICY.select(t.fragments(), 20, costs_from({1: 5.0}))
        assert w is not None
        assert w.offset == 10 and w.p_score == 0.0

    def test_prefers_zero_p_checkpoint(self):
        # [ckpt1 10][ckpt2 10][ckpt3 10] + gap 70; need 80 → must take a
        # run including the gap plus one checkpoint: picks the cheapest run.
        t = build_table([(1, 10, 0), (2, 10, 10), (3, 10, 20)])
        w = POLICY.select(t.fragments(), 80, costs_from({1: 9.0, 2: 9.0, 3: 0.0}))
        assert w is not None
        # window [ckpt3, gap] has p=0
        assert w.p_score == 0.0
        assert w.offset == 20

    def test_tie_break_on_s_score(self):
        # full arena of 10 checkpoints, all p=0; need one slot: the window
        # with the largest prefetch distance must win.
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        s_map = {i: i for i in range(10)}  # farthest = ckpt 9
        w = POLICY.select(t.fragments(), 10, costs_from({}, s_map))
        assert w is not None
        assert w.offset == 90 and w.s_score == 9.0

    def test_minimizes_p_over_s(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        p_map = {i: 0.0 if i == 2 else 5.0 for i in range(10)}
        s_map = {i: i for i in range(10)}
        w = POLICY.select(t.fragments(), 10, costs_from(p_map, s_map))
        assert w.offset == 20  # p wins over s

    def test_multi_fragment_window_sums_scores(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        p_map = {i: float(i) for i in range(10)}
        w = POLICY.select(t.fragments(), 25, costs_from(p_map))
        assert w is not None
        # cheapest run of three consecutive = [0,1,2] with p=3
        assert w.start == 0 and w.p_score == 3.0
        assert w.size == 30

    def test_barrier_splits_windows(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        # barrier in the middle: windows cannot cross ckpt 4
        w = POLICY.select(
            t.fragments(), 35, costs_from({i: float(i) for i in range(10)}, barriers={4})
        )
        assert w is not None
        assert not (w.start <= 4 < w.end)

    def test_all_barriers_returns_none(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        w = POLICY.select(t.fragments(), 10, costs_from({}, barriers=set(range(10))))
        assert w is None

    def test_impossible_size_returns_none(self):
        t = build_table([(1, 10, 0)], capacity=50)
        w = POLICY.select(t.fragments(), 60, costs_from({}))
        assert w is None

    def test_limit_excludes_tail(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        w = POLICY.select(t.fragments(), 10, costs_from({}, {i: i for i in range(10)}), limit=50)
        assert w is not None
        assert w.offset + 10 <= 50

    def test_min_offset_excludes_head(self):
        entries = [(i, 10, i * 10) for i in range(10)]
        t = build_table(entries)
        w = POLICY.select(t.fragments(), 10, costs_from({}), min_offset=60)
        assert w is not None
        assert w.offset >= 60

    def test_gaps_most_preferred(self):
        # [ckpt 10][gap 10][ckpt ...]: a window using the gap should win
        t = build_table([(1, 10, 0), (2, 10, 20), (3, 70, 30)])
        w = POLICY.select(t.fragments(), 10, costs_from({}, {1: 50, 2: 50, 3: 50}))
        assert w is not None
        assert w.offset == 10 and w.p_score == 0.0 and w.s_score == 1000.0


class TestMakeCostFn:
    def test_gap_cost(self):
        fn = make_cost_fn(lambda f: 0.0, lambda f: None, no_hint_score=50.0)
        gap = Fragment(0, 10)
        c = fn(gap)
        assert c.p == 0.0 and c.s == 51.0 and not c.barrier

    def test_infinite_ts_is_barrier(self):
        fn = make_cost_fn(lambda f: math.inf, lambda f: None, no_hint_score=50.0)
        frag = Fragment(0, 10, rec(1))
        assert fn(frag).barrier

    def test_unhinted_gets_no_hint_score(self):
        fn = make_cost_fn(lambda f: 1.0, lambda f: None, no_hint_score=50.0)
        frag = Fragment(0, 10, rec(1))
        c = fn(frag)
        assert c.s == 50.0 and c.p == 1.0

    def test_hinted_gets_distance(self):
        fn = make_cost_fn(lambda f: 0.0, lambda f: 7, no_hint_score=50.0)
        frag = Fragment(0, 10, rec(1))
        assert fn(frag).s == 7.0


class TestComplexity:
    def test_linear_pass_on_large_table(self):
        """The two-pointer scan should evaluate each fragment's cost once."""
        n = 2000
        entries = [(i, 10, i * 10) for i in range(n)]
        t = build_table(entries, capacity=10 * n)
        calls = []

        def cost_of(frag):
            calls.append(frag)
            return FragmentCost(p=1.0, s=0.0, barrier=False)

        POLICY.select(t.fragments(), 25, cost_of)
        assert len(calls) <= n  # memoized: one evaluation per fragment
