"""Arenas and application buffers."""

import numpy as np
import pytest

from repro.config import ScaleModel
from repro.errors import AllocationError, ConfigError
from repro.simgpu.memory import (
    Arena,
    DeviceBuffer,
    HostBuffer,
    checksum_payload,
    make_payload,
)
from repro.util.rng import make_rng
from repro.util.units import KiB, MiB

SCALE = ScaleModel(data_scale=64 * KiB, alignment=64 * KiB)


class TestArena:
    def test_capacity_scaling(self):
        a = Arena("t", 64 * MiB, SCALE)
        assert a.payload_capacity == 1024

    def test_write_read_roundtrip(self):
        a = Arena("t", 64 * MiB, SCALE)
        data = make_payload(1 * MiB, SCALE, make_rng(1, "x"))
        a.write(2 * MiB, data)
        out = a.read(2 * MiB, 1 * MiB)
        assert np.array_equal(out[: data.size], data)

    def test_distinct_offsets_do_not_clobber(self):
        a = Arena("t", 64 * MiB, SCALE)
        d1 = make_payload(1 * MiB, SCALE, make_rng(1, "a"))
        d2 = make_payload(1 * MiB, SCALE, make_rng(1, "b"))
        a.write(0, d1)
        a.write(1 * MiB, d2)
        assert np.array_equal(a.read(0, 1 * MiB)[: d1.size], d1)
        assert np.array_equal(a.read(1 * MiB, 1 * MiB)[: d2.size], d2)

    def test_out_of_bounds_rejected(self):
        a = Arena("t", 1 * MiB, SCALE)
        with pytest.raises(AllocationError):
            a.read(1 * MiB, 64 * KiB)
        with pytest.raises(AllocationError):
            a.read(-1, 64 * KiB)

    def test_write_zeroes_alignment_tail(self):
        # 64 payload bytes per aligned extent: short writes leave a tail.
        scale = ScaleModel(data_scale=1 * KiB, alignment=64 * KiB)
        a = Arena("t", 1 * MiB, scale)
        a.write(0, np.full(64, 0xAB, dtype=np.uint8))  # previous occupant
        a.write(0, np.full(5, 0x11, dtype=np.uint8))  # shorter new occupant
        out = a.read(0, 64 * KiB)
        assert np.array_equal(out[:5], np.full(5, 0x11, dtype=np.uint8))
        assert not out[5:].any()  # stale bytes must not survive the rewrite

    def test_read_view_is_zero_copy_and_read_only(self):
        a = Arena("t", 64 * MiB, SCALE)
        data = make_payload(1 * MiB, SCALE, make_rng(2, "v"))
        a.write(0, data)
        view = a.read(0, 1 * MiB, copy=False)
        assert view.base is not None  # a view into the arena, not a copy
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 1
        assert np.array_equal(view[: data.size], data)

    def test_unaligned_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Arena("t", 100, SCALE)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Arena("t", 0, SCALE)


class TestBuffers:
    def test_device_buffer_payload_size(self):
        b = DeviceBuffer(128 * MiB, SCALE)
        assert b.payload.size == 128 * MiB // (64 * KiB)

    def test_unaligned_size_rejected(self):
        with pytest.raises(ConfigError):
            DeviceBuffer(100, SCALE)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            DeviceBuffer(0, SCALE)

    def test_fill_random_changes_checksum(self):
        b = DeviceBuffer(1 * MiB, SCALE)
        empty = b.checksum()
        b.fill_random(make_rng(1, "x"))
        assert b.checksum() != empty

    def test_fill_random_deterministic(self):
        b1 = DeviceBuffer(1 * MiB, SCALE)
        b2 = DeviceBuffer(1 * MiB, SCALE)
        b1.fill_random(make_rng(9, "s"))
        b2.fill_random(make_rng(9, "s"))
        assert b1.checksum() == b2.checksum()

    def test_fill_random_varies_between_calls(self):
        b = DeviceBuffer(1 * MiB, SCALE)
        rng = make_rng(3, "v")
        b.fill_random(rng)
        c1 = b.checksum()
        b.fill_random(rng)
        assert b.checksum() != c1

    def test_copy_from(self):
        b = DeviceBuffer(1 * MiB, SCALE)
        data = make_payload(1 * MiB, SCALE, make_rng(4, "z"))
        b.copy_from(data)
        assert b.checksum() == checksum_payload(data)

    def test_copy_from_short_payload_rejected(self):
        b = DeviceBuffer(1 * MiB, SCALE)
        with pytest.raises(AllocationError):
            b.copy_from(np.zeros(3, dtype=np.uint8))

    def test_host_buffer_pinned_flag(self):
        assert HostBuffer(1 * MiB, SCALE).pinned
        assert not HostBuffer(1 * MiB, SCALE, pinned=False).pinned


class TestHelpers:
    def test_make_payload_zero_filled(self):
        p = make_payload(1 * MiB, SCALE)
        assert p.sum() == 0

    def test_checksum_payload_matches_buffer(self):
        data = make_payload(1 * MiB, SCALE, make_rng(5, "c"))
        b = DeviceBuffer(1 * MiB, SCALE)
        b.copy_from(data)
        assert checksum_payload(data) == b.checksum()
