"""Self-healing integration tests: injected faults, crashes and recovery.

The acceptance bar for the resilience subsystem:

* a corrupted durable blob is detected on restore, scrubbed, and repaired
  from a surviving replica — the restore still returns verified bytes;
* an injected process crash at *any* flush-stage boundary loses nothing
  durable: re-incarnation + ``recover_history()`` (journal replay + store
  scan) recovers every checkpoint that reached a durable tier, including
  reduced ones (via the chunk-recipe sidecar);
* a hard SSD outage reroutes the cascade to the PFS and backfills the SSD
  copy once the tier heals;
* ``checkpoint()`` is exception-safe: a mid-write failure rolls back the
  cache slot, the reducer chain head and the catalog record;
* ``wait_for_flushes`` honours the configured timeout and reports
  retry/breaker state in the stall diagnostics;
* (property) fault-injected runs restore bit-identical data to fault-free
  runs — faults may cost time, never correctness.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig, ReduceConfig, ResilienceConfig
from repro.core.engine import ScoreEngine
from repro.core.validator import validate_engine
from repro.errors import FlushTimeoutError, InjectedCrash
from repro.tiers.base import TierLevel
from repro.tiers.topology import Cluster
from repro.util.units import MiB
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB

RESILIENT = ResilienceConfig(enabled=True)


def _tamper(store, key):
    """Flip one byte of an in-memory blob (the CRC sidecar keeps the
    pristine checksum, so ``verify()`` detects the rot)."""
    blob = store._blobs[key]
    bad = blob.copy()
    bad[0] ^= 0xFF
    bad.flags.writeable = False
    with store._blob_lock:
        store._blobs[key] = bad


class TestCorruptionRepair:
    def test_restore_repairs_corrupt_ssd_blob_from_pfs(self):
        cfg = tiny_config(resilience=RESILIENT)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            sums = {}
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                for v in range(3):
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
                pid = engine.process_id
            # Rot at rest while the process is down.
            _tamper(cluster.nodes[0].ssd, (pid, 0))
            with ScoreEngine(ctx, flush_to_pfs=True) as engine2:
                assert engine2.recover_history() == 3
                out = ctx.device.alloc_buffer(CKPT)
                engine2.restore(0, out)  # detects the mismatch, repairs
                assert out.checksum() == sums[0]
                # The bad blob was scrubbed and re-flushed from the PFS copy.
                key = (pid, 0)
                assert engine2.ssd.contains(key)
                assert engine2.ssd.verify(key)
                assert cluster.journal.retracts >= 1
                reg = cluster.telemetry.registry
                assert reg.counter("resilience.corruption_repairs").value >= 1
                for v in (1, 2):
                    engine2.restore(v, out)
                    assert out.checksum() == sums[v]
                validate_engine(engine2)

    def test_unrepairable_corruption_still_raises(self):
        """Every durable copy rotten -> IntegrityError, never silent data."""
        from repro.errors import IntegrityError

        cfg = tiny_config(resilience=RESILIENT)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                engine.checkpoint(0, make_buffer(ctx, CKPT, seed=0))
                engine.wait_for_flushes(timeout=600.0)
                pid = engine.process_id
            _tamper(cluster.nodes[0].ssd, (pid, 0))
            _tamper(cluster.pfs, (pid, 0))
            with ScoreEngine(ctx, flush_to_pfs=True) as engine2:
                engine2.recover_history()
                with pytest.raises(IntegrityError):
                    engine2.restore(0, ctx.device.alloc_buffer(CKPT))


def _crash_scenario(point, *, gpudirect=False, nodes=1, replicate=False,
                    reduce_cfg=None):
    """Checkpoint v0 cleanly, crash the engine at ``point`` while flushing
    v1, then re-incarnate and assert every durable checkpoint recovers
    with verified bytes."""
    cfg = tiny_config(
        faults=FaultConfig(enabled=True, crash_point=point, crash_ckpt=1),
        resilience=RESILIENT,
        num_nodes=nodes,
    )
    if reduce_cfg is not None:
        cfg = cfg.with_(reduce=reduce_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        engine = ScoreEngine(
            ctx, flush_to_pfs=True, gpudirect=gpudirect,
            partner_replication=replicate,
        )
        sums = {}
        buf0 = make_buffer(ctx, CKPT, seed=0)
        sums[0] = buf0.checksum()
        engine.checkpoint(0, buf0)
        engine.wait_for_flushes(timeout=600.0)
        buf1 = make_buffer(ctx, CKPT, seed=1)
        sums[1] = buf1.checksum()
        try:
            engine.checkpoint(1, buf1)
        except InjectedCrash:
            pass  # before-d2s fires synchronously enough to surface here
        engine.close()  # streams drain; crashed stages drop their work
        assert cluster.faults.crashes == 1
        assert engine.crashed.is_set()
        pid = engine.process_id

        # What actually reached a durable tier decides what must come back.
        stores = [cluster.nodes[0].ssd, cluster.pfs]
        if nodes > 1:
            stores.append(cluster.nodes[1].ssd)
        durable = {
            v for v in (0, 1) if any(s.contains((pid, v)) for s in stores)
        }
        assert 0 in durable  # v0 flushed cleanly before the crash

        engine2 = ScoreEngine(
            ctx, flush_to_pfs=True, gpudirect=gpudirect,
            partner_replication=replicate,
        )
        try:
            recovered = engine2.recover_history()
            assert recovered == len(durable)
            out = ctx.device.alloc_buffer(CKPT)
            for v in sorted(durable):
                engine2.restore(v, out)
                assert out.checksum() == sums[v]
            validate_engine(engine2)
        finally:
            engine2.close()
        return durable, cluster, pid


class TestCrashMatrix:
    """Re-incarnation after an injected crash at every flush-stage boundary
    recovers 100% of the durable checkpoints."""

    @pytest.mark.parametrize(
        "point",
        [
            "before-d2h", "after-d2h",
            "before-h2f", "after-h2f",
            "before-f2p", "after-f2p",
        ],
    )
    def test_host_cascade(self, point):
        durable, _, _ = _crash_scenario(point)
        if point in ("after-h2f", "before-f2p", "after-f2p"):
            assert 1 in durable  # SSD put committed before these points

    @pytest.mark.parametrize("point", ["before-d2s", "after-d2s"])
    def test_gpudirect_cascade(self, point):
        durable, _, _ = _crash_scenario(point, gpudirect=True)
        if point == "after-d2s":
            assert 1 in durable

    @pytest.mark.parametrize("point", ["before-repl", "after-repl"])
    def test_replication_leg(self, point):
        # Replication runs after local durability: v1 always recovers.
        durable, cluster, pid = _crash_scenario(point, nodes=2, replicate=True)
        assert 1 in durable

    def test_crashed_engine_rejects_new_work(self):
        cfg = tiny_config(
            faults=FaultConfig(enabled=True, crash_point="before-h2f", crash_ckpt=0),
            resilience=RESILIENT,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            engine = ScoreEngine(ctx)
            engine.checkpoint(0, make_buffer(ctx, CKPT, seed=0))
            engine.crashed.wait(timeout=30.0)  # the flush stream trips it
            assert engine.crashed.is_set()
            with pytest.raises(InjectedCrash):
                engine.checkpoint(1, make_buffer(ctx, CKPT, seed=1))
            engine.close()

    def test_crash_recovers_reduced_checkpoints(self):
        """The chunk-recipe sidecar makes reduced checkpoints crash-safe."""
        durable, _, _ = _crash_scenario(
            "after-h2f", reduce_cfg=ReduceConfig(enabled=True)
        )
        assert 1 in durable


class TestOutageRerouteAndBackfill:
    def test_ssd_outage_reroutes_to_pfs_then_backfills(self):
        cfg = tiny_config(
            faults=FaultConfig(enabled=True, tier_outages=(("ssd", 0.0, 30.0, 0.0),)),
            resilience=RESILIENT,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                sums = {}
                # Phase 1: the SSD is dark; durability must arrive via the
                # GPU->host->PFS reroute, not be abandoned.
                buf = make_buffer(ctx, CKPT, seed=0)
                sums[0] = buf.checksum()
                engine.checkpoint(0, buf)
                engine.wait_for_flushes(timeout=600.0)
                record = engine.catalog.get(0)
                assert record.durable_level is TierLevel.PFS
                assert engine.flusher.rerouted >= 1
                assert not engine.ssd.contains((engine.process_id, 0))

                # Phase 2: the tier heals; the cascade backfills the SSD
                # copy so reads regain the fast path.
                engine.clock.sleep(max(0.0, 35.0 - engine.clock.now()))
                buf = make_buffer(ctx, CKPT, seed=1)
                sums[1] = buf.checksum()
                engine.checkpoint(1, buf)
                engine.wait_for_flushes(timeout=600.0)
                assert engine.ssd.contains((engine.process_id, 0))
                assert engine.flusher.backfilled >= 1
                assert engine.flusher.backfill_depth == 0

                out = ctx.device.alloc_buffer(CKPT)
                for v in (0, 1):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]
                stats = engine.stats()["resilience"]
                assert stats["rerouted"] >= 1
                assert stats["backfilled"] >= 1
                validate_engine(engine)

    def test_restore_routes_around_dark_ssd(self):
        """With copies on SSD and PFS, a restore during an SSD outage is
        served from the PFS instead of failing."""
        cfg = tiny_config(
            faults=FaultConfig(enabled=True, tier_outages=(("ssd", 5.0, 1e9, 0.0),)),
            resilience=RESILIENT,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                buf = make_buffer(ctx, CKPT, seed=7)
                expected = buf.checksum()
                engine.checkpoint(0, buf)
                engine.wait_for_flushes(timeout=600.0)
            # Deep into the outage window, a replacement process recovers
            # and restores without touching the dark SSD.
            with ScoreEngine(ctx, flush_to_pfs=True) as engine2:
                engine2.clock.sleep(max(0.0, 6.0 - engine2.clock.now()))
                assert engine2.recover_history() >= 1
                out = ctx.device.alloc_buffer(CKPT)
                engine2.restore(0, out)
                assert out.checksum() == expected


class TestCheckpointRollback:
    def _fail_write_once(self, engine):
        original = engine.gpu_cache.write_payload
        state = {"armed": True}

        def boom(record, payload):
            if state["armed"]:
                state["armed"] = False
                raise RuntimeError("injected cache-write failure")
            return original(record, payload)

        engine.gpu_cache.write_payload = boom

    def test_failed_checkpoint_rolls_back_cleanly(self, context):
        engine = ScoreEngine(context)
        try:
            engine.checkpoint(0, make_buffer(context, CKPT, seed=0))
            self._fail_write_once(engine)
            with pytest.raises(RuntimeError):
                engine.checkpoint(1, make_buffer(context, CKPT, seed=1))
            assert not engine.catalog.contains(1)
            validate_engine(engine)  # no orphaned slot, no leaked instance
            # The same id can be checkpointed again after the rollback.
            buf = make_buffer(context, CKPT, seed=1)
            engine.checkpoint(1, buf)
            engine.wait_for_flushes(timeout=600.0)
            out = context.device.alloc_buffer(CKPT)
            engine.restore(1, out)
            assert out.checksum() == buf.checksum()
            validate_engine(engine)
        finally:
            engine.close()

    def test_rollback_rewinds_reducer_chain_head(self):
        cfg = tiny_config(reduce=ReduceConfig(enabled=True), resilience=RESILIENT)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                engine.checkpoint(0, make_buffer(ctx, CKPT, seed=0))
                self._fail_write_once(engine)
                with pytest.raises(RuntimeError):
                    engine.checkpoint(1, make_buffer(ctx, CKPT, seed=1))
                assert not engine.catalog.contains(1)
                # The delta-chain head is back on v0 and the recipe sidecar
                # holds nothing for the aborted write.
                assert engine.reducer._last_image.ckpt_id == 0
                assert not cluster.recipes.contains(engine.process_id, 1)
                validate_engine(engine)  # includes the chain-head invariant
                buf = make_buffer(ctx, CKPT, seed=1)
                engine.checkpoint(1, buf)
                engine.wait_for_flushes(timeout=600.0)
                out = ctx.device.alloc_buffer(CKPT)
                engine.restore(1, out)
                assert out.checksum() == buf.checksum()
                validate_engine(engine)


class TestFlushWaitTimeout:
    def test_config_default_timeout_and_stall_report(self):
        # A deep brownout makes the h2f leg ~1000x slower than nominal, so
        # the configured default timeout fires while the put is in flight.
        cfg = tiny_config(
            faults=FaultConfig(enabled=True, tier_outages=(("ssd", 0.0, 1e9, 0.001),)),
            resilience=RESILIENT,
            flush_wait_timeout=5.0,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx) as engine:
                engine.checkpoint(0, make_buffer(ctx, CKPT, seed=0))
                with pytest.raises(FlushTimeoutError) as excinfo:
                    engine.wait_for_flushes()  # config default applies
                message = str(excinfo.value)
                assert "stream depths" in message
                assert "retries=" in message  # resilience state included
                assert "breakers" in message
                assert "injected" in message  # fault-domain snapshot
                # The flush completes eventually; nothing was lost.
                engine.wait_for_flushes(timeout=600.0)
                assert engine.catalog.get(0).durable_level is TierLevel.SSD

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.wait_for_flushes(timeout=-1.0)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.sampled_from([0.02, 0.1, 0.3]),
)
def test_injected_faults_never_change_restored_bytes(seed, rate):
    """Property: transient faults + retries cost time, never correctness —
    every restore returns exactly the checksum a fault-free run returns
    (which is the application buffer's own checksum)."""
    cfg = tiny_config(
        faults=FaultConfig(enabled=True, seed=seed, transfer_fault_rate=rate),
        resilience=RESILIENT,
    )
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            sums = {}
            for v in range(6):
                buf = make_buffer(ctx, CKPT, seed=v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            out = ctx.device.alloc_buffer(CKPT)
            for v in range(6):
                engine.restore(v, out)
                assert out.checksum() == sums[v]
            validate_engine(engine)
