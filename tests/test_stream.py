"""Stream / Event (asynchronous work queues)."""

import threading
import time

import pytest

from repro.errors import TransferError
from repro.simgpu.stream import Event, Stream


@pytest.fixture
def stream():
    s = Stream("test")
    yield s
    s.close(drain=False)


def test_work_executes(stream):
    done = []
    stream.submit(lambda: done.append(1)).wait(timeout=5)
    assert done == [1]


def test_fifo_ordering(stream):
    order = []
    events = [stream.submit(lambda i=i: order.append(i)) for i in range(20)]
    for e in events:
        e.wait(timeout=5)
    assert order == list(range(20))


def test_event_query(stream):
    gate = threading.Event()
    e = stream.submit(gate.wait)
    assert not e.query()
    gate.set()
    e.wait(timeout=5)
    assert e.query()


def test_exception_propagates_to_waiter(stream):
    def boom():
        raise RuntimeError("kapow")

    e = stream.submit(boom)
    with pytest.raises(RuntimeError, match="kapow"):
        e.wait(timeout=5)
    assert e.error is not None


def test_exception_does_not_kill_stream(stream):
    def boom():
        raise RuntimeError("x")

    stream.submit(boom)
    done = []
    stream.submit(lambda: done.append(1)).wait(timeout=5)
    assert done == [1]


def test_synchronize_waits_for_all(stream):
    results = []
    for i in range(5):
        stream.submit(lambda i=i: (time.sleep(0.002), results.append(i)))
    stream.synchronize()
    assert len(results) == 5


def test_depth(stream):
    gate = threading.Event()
    stream.submit(gate.wait)
    stream.submit(lambda: None)
    assert stream.depth >= 1
    gate.set()
    stream.synchronize()
    assert stream.depth == 0


def test_close_drain_executes_pending():
    s = Stream("drain")
    done = []
    for i in range(5):
        s.submit(lambda i=i: done.append(i))
    s.close(drain=True)
    assert done == list(range(5))


def test_close_without_drain_cancels_pending():
    s = Stream("nodrain")
    gate = threading.Event()
    s.submit(gate.wait)
    e2 = s.submit(lambda: None)
    gate.set()
    s.close(drain=False)
    if e2.cancelled:
        with pytest.raises(TransferError):
            e2.wait(timeout=1)


def test_submit_after_close_rejected():
    s = Stream("closed")
    s.close(drain=True)
    with pytest.raises(TransferError):
        s.submit(lambda: None)


def test_close_idempotent():
    s = Stream("idem")
    s.close(drain=True)
    s.close(drain=True)


def test_event_wait_timeout():
    e = Event("never")
    with pytest.raises(TransferError):
        e.wait(timeout=0.01)
