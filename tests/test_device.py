"""Simulated Device: arenas, buffers, streams, links."""

import pytest

from repro.clock import VirtualClock
from repro.config import HardwareSpec, ScaleModel
from repro.simgpu.device import Device
from repro.util.units import GiB, KiB, MiB

SCALE = ScaleModel(data_scale=512 * KiB, alignment=512 * KiB, time_scale=0.002)


@pytest.fixture
def device():
    dev = Device(0, HardwareSpec(), SCALE, VirtualClock(time_scale=0.002))
    yield dev
    dev.close()


def test_private_links_when_standalone(device):
    assert device.d2d_link is not device.d2h_link
    assert device.d2h_link.bandwidth == pytest.approx(25 * GiB)
    assert device.d2d_link.bandwidth == pytest.approx(1024 * GiB)


def test_alloc_arena_charges_time(device):
    before = device.clock.now()
    device.alloc_arena(4 * GiB, charge_cost=True)
    elapsed = device.clock.now() - before
    # 4 GiB at 1 TiB/s ≈ 3.9 ms of nominal allocation time.
    assert elapsed >= 0.003


def test_alloc_arena_free_when_uncharged(device):
    before = device.clock.now()
    device.alloc_arena(4 * GiB, charge_cost=False)
    assert device.clock.now() - before < 0.5


def test_alloc_buffer_aligns(device):
    buf = device.alloc_buffer(100 * MiB)
    assert buf.nominal_size % SCALE.alignment == 0
    assert buf.device_id == 0


def test_streams_tracked_and_closed(device):
    s1 = device.create_stream("a")
    s2 = device.create_stream("b")
    done = []
    s1.submit(lambda: done.append(1)).wait(timeout=5)
    device.close()
    assert done == [1]
    # after close the streams reject new work
    from repro.errors import TransferError

    with pytest.raises(TransferError):
        s2.submit(lambda: None)


def test_shared_links_injected():
    clock = VirtualClock(time_scale=0.002)
    spec = HardwareSpec()
    from repro.simgpu.bandwidth import Link

    shared = Link("shared", spec.d2h_bandwidth, clock)
    dev = Device(1, spec, SCALE, clock, d2h_link=shared)
    assert dev.d2h_link is shared
    dev.close()
