"""Smoke tests for the figure harness at miniature scale.

The full grids are exercised by ``benchmarks/``; here each figure function
runs at the smallest sensible size so its plumbing (rows, rendering,
extras) is covered by the ordinary test suite.
"""

import pytest

from repro.harness import figures
from repro.util.units import MiB


pytestmark = pytest.mark.filterwarnings("ignore")

N = 24  # smallest size whose ratio-scaled GPU cache fits 2 x 128 MiB


class TestFig4:
    def test_rows_and_extras(self):
        result = figures.fig4_size_distribution(num_ranks=4, num_snapshots=16)
        assert len(result.rows) == 16
        assert len(result.extras["per_rank_totals_gib"]) == 4
        assert "Figure 4" in result.rendered


class TestThroughputGrids:
    def test_fig6_single_cell(self):
        from repro.harness.approaches import APPROACHES
        from repro.workloads.patterns import RestoreOrder

        result = figures.fig6_nowait(
            workload="uniform",
            num_snapshots=N,
            approaches=(APPROACHES["score-all"],),
            orders=(RestoreOrder.REVERSE,),
        )
        assert len(result.rows) == 1
        order, label, ckpt, restore = result.rows[0]
        assert order == "reverse" and "Score" in label
        assert ckpt.endswith("/s") and restore.endswith("/s")

    def test_fig5_single_cell(self):
        from repro.harness.approaches import APPROACHES
        from repro.workloads.patterns import RestoreOrder

        result = figures.fig5_wait(
            workload="variable",
            num_snapshots=N,
            approaches=(APPROACHES["uvm-none"],),
            orders=(RestoreOrder.SEQUENTIAL,),
        )
        assert len(result.rows) == 1
        assert "WAIT" in result.rendered


class TestSensitivity:
    def test_fig8a_minimal(self):
        result = figures.fig8a_compute_interval(intervals=(0.010,), num_snapshots=N)
        assert len(result.rows) == 5  # the five fig-8 approaches
        assert all(row[0] == "10ms" for row in result.rows)


class TestCli:
    def test_list(self, capsys):
        assert figures.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "ablation-eviction" in out

    def test_run_fig4(self, capsys):
        assert figures.main(["fig4"]) == 0
        assert "Figure 4" in capsys.readouterr().out
