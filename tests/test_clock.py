"""Virtual clock behaviour."""

import threading
import time

import pytest

from repro.clock import Stopwatch, VirtualClock
from repro.errors import ConfigError


class TestConversions:
    def test_identity_scale(self):
        c = VirtualClock(1.0)
        assert c.to_real(2.5) == 2.5
        assert c.to_virtual(2.5) == 2.5

    def test_compressing_scale(self):
        c = VirtualClock(0.01)
        assert c.to_real(100.0) == pytest.approx(1.0)
        assert c.to_virtual(1.0) == pytest.approx(100.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            VirtualClock(0.0)
        with pytest.raises(ConfigError):
            VirtualClock(-1.0)


class TestNowAndSleep:
    def test_now_monotonic(self):
        c = VirtualClock(0.001)
        a = c.now()
        b = c.now()
        assert b >= a

    def test_sleep_advances_virtual_time(self):
        c = VirtualClock(0.001)
        before = c.now()
        c.sleep(5.0)  # 5 virtual seconds = 5 ms wall
        elapsed = c.now() - before
        assert elapsed >= 5.0
        assert elapsed < 20.0  # not wildly overshooting

    def test_sleep_wall_duration(self):
        c = VirtualClock(0.01)
        t0 = time.monotonic()
        c.sleep(1.0)  # 10 ms wall
        wall = time.monotonic() - t0
        assert 0.009 <= wall < 0.1

    def test_short_sleep_spins_accurately(self):
        c = VirtualClock(0.001)
        t0 = time.monotonic()
        c.sleep(0.05)  # 50 µs wall: below OS sleep granularity
        wall = time.monotonic() - t0
        assert wall >= 50e-6
        assert wall < 2e-3

    def test_zero_sleep(self):
        VirtualClock(0.01).sleep(0.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(0.01).sleep(-1.0)


class TestWaitFor:
    def test_wait_for_predicate(self):
        c = VirtualClock(0.001)
        cond = threading.Condition()
        flag = []

        def setter():
            time.sleep(0.005)
            with cond:
                flag.append(1)
                cond.notify_all()

        threading.Thread(target=setter, daemon=True).start()
        with cond:
            ok = c.wait_for(cond, lambda: bool(flag), virtual_timeout=60.0)
        assert ok

    def test_wait_for_timeout(self):
        c = VirtualClock(0.001)
        cond = threading.Condition()
        with cond:
            ok = c.wait_for(cond, lambda: False, virtual_timeout=1.0)
        assert not ok


class TestStopwatch:
    def test_measures_virtual_elapsed(self):
        c = VirtualClock(0.001)
        with Stopwatch(c) as sw:
            c.sleep(3.0)
        assert sw.elapsed >= 3.0
        assert sw.started_at is not None
