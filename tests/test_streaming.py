"""Pipelined chunk streaming through the flush/prefetch cascade.

The acceptance bar for the streaming subsystem:

* ``StreamConfig.enabled=False`` changes nothing — the same discipline as
  ``SchedConfig`` / ``ReduceConfig`` / ``FaultConfig``: identical eviction
  decision streams, cache layouts, tier byte counters, store metadata and
  restored bytes, and no streaming metrics registered;
* streaming on, the cascade restores bit-identical bytes, reports pipeline
  counts and overlap/stall gauges, and composes with the reduction
  pipeline (chunk recipes reconstruct, CRCs verify);
* a crash between chunk commits loses nothing durable (commit-at-end: a
  torn stream leaves no partial object, and the manifest journal recovers
  every checkpoint that reached a durable tier);
* an SSD failure mid-stream reroutes to the PFS, replaying the chunks the
  dead put had consumed, and the rerouted checkpoint restores verified
  bytes;
* (property) streamed and store-and-forward runs restore identical
  payload checksums for arbitrary snapshot-size mixes.

Plus unit coverage of the chunk planner, the ring-buffer backpressure
fabric itself, the event-driven completion callbacks, and the drain
sweep.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clock import VirtualClock
from repro.config import FaultConfig, ReduceConfig, ResilienceConfig, StreamConfig
from repro.core.engine import ScoreEngine
from repro.core.streaming import ChunkPipeline, chunk_sizes_for, plan_chunks
from repro.core.validator import validate_engine
from repro.errors import InjectedCrash, TierOfflineError
from repro.simgpu.stream import Stream
from repro.tiers.base import TierLevel
from repro.tiers.topology import Cluster
from repro.util.rng import make_rng
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder, restore_order
from tests.conftest import make_buffer, tiny_config

CKPT = 128 * MiB

STREAMING = StreamConfig(enabled=True)
RESILIENT = ResilienceConfig(enabled=True)


# -- chunk planning ----------------------------------------------------------
class TestChunkPlanning:
    def test_plan_splits_near_equal(self):
        sizes = plan_chunks(100, 30, 2)
        assert sizes == [25, 25, 25, 25]
        assert sum(sizes) == 100

    def test_plan_rejects_small_transfers(self):
        assert plan_chunks(10, 30, 2) is None  # one chunk: stay legacy
        assert plan_chunks(0, 30, 2) is None
        assert plan_chunks(60, 30, 2) == [30, 30]

    def test_chunk_sizes_for_exact_count(self):
        sizes = chunk_sizes_for(10, 3)
        assert sizes == [4, 3, 3]
        assert sum(sizes) == 10

    def test_stage_counts_align_across_sizes(self):
        # Reduced stages move fewer bytes but the same number of chunks.
        wire = plan_chunks(128 * MiB, 16 * MiB, 2)
        reduced = chunk_sizes_for(37 * MiB + 11, len(wire))
        assert len(reduced) == len(wire)
        assert sum(reduced) == 37 * MiB + 11


# -- the pipeline fabric -----------------------------------------------------
class TestChunkPipeline:
    def _pipeline(self, chunks=4, ring=2):
        pipe = ChunkPipeline(0, chunks, ring, VirtualClock())
        pipe.add_stage("a")
        pipe.add_stage("b")
        return pipe

    def test_consumer_waits_for_publish(self):
        pipe = self._pipeline()
        got = []

        def consumer():
            for i in range(pipe.chunks):
                got.append(pipe.await_upstream("b", i))

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(pipe.chunks):
            pipe.publish("a", i)
        t.join(timeout=10.0)
        assert got == [True] * pipe.chunks

    def test_ring_backpressure_parks_producer(self):
        pipe = self._pipeline(chunks=6, ring=2)
        progressed = threading.Event()
        parked = threading.Event()

        def producer():
            for i in range(pipe.chunks):
                if i == pipe.ring:
                    parked.set()
                assert pipe.throttle("a", i)
                pipe.publish("a", i)
            progressed.set()

        t = threading.Thread(target=producer)
        t.start()
        assert parked.wait(timeout=10.0)
        # ring chunks ahead of a consumer that has done nothing: parked.
        assert not progressed.wait(timeout=0.2)
        for i in range(pipe.chunks):
            pipe.publish("b", i)
        assert progressed.wait(timeout=10.0)
        t.join(timeout=10.0)
        assert pipe.stall_s["a"] > 0.0

    def test_upstream_failure_unblocks_consumer(self):
        pipe = self._pipeline()
        pipe.publish("a", 0)
        assert pipe.await_upstream("b", 0)
        result = []
        t = threading.Thread(target=lambda: result.append(pipe.await_upstream("b", 1)))
        t.start()
        pipe.fail("a")
        t.join(timeout=10.0)
        assert result == [False]

    def test_downstream_failure_releases_producer(self):
        pipe = self._pipeline(chunks=6, ring=2)
        pipe.fail("b")
        # The producer keeps charging its own link to completion.
        assert all(pipe.throttle("a", i) for i in range(pipe.chunks))

    def test_skip_counts_as_complete(self):
        pipe = self._pipeline()
        pipe.skip("b")
        assert pipe.skipped("b")
        assert all(pipe.throttle("a", i) for i in range(pipe.chunks))
        assert pipe.await_finished("a", "b")

    def test_finish_beats_late_failure_signal(self):
        pipe = self._pipeline()
        pipe.finish("a")
        pipe.fail("a")  # stream-level error after the commit: kept
        assert pipe.finished("a") and not pipe.failed("a")
        assert pipe.await_upstream("b", pipe.chunks - 1)

    def test_release_refcount(self):
        pipe = self._pipeline()
        pipe.retain(2)
        assert not pipe.release()
        assert pipe.release()  # last worker out owns the metrics roll-up

    def test_overlap_integrator(self):
        pipe = self._pipeline()
        pipe.enter_chunk()
        pipe.enter_chunk()
        pipe.exit_chunk()
        pipe.exit_chunk()
        assert pipe.active_s >= pipe.overlap_s >= 0.0


# -- event-driven completion handoff ----------------------------------------
class TestEventCallbacks:
    def test_callback_fires_on_completion(self):
        stream = Stream("cb-test")
        try:
            gate = threading.Event()
            fired = threading.Event()
            event = stream.submit(gate.wait)
            event.add_done_callback(lambda ev: fired.set())
            assert not fired.is_set()
            gate.set()
            assert fired.wait(timeout=10.0)
        finally:
            stream.close()

    def test_callback_fires_immediately_when_done(self):
        stream = Stream("cb-test")
        try:
            event = stream.submit(lambda: None)
            event.wait(timeout=10.0)
            seen = []
            event.add_done_callback(seen.append)
            assert seen == [event]
        finally:
            stream.close()

    def test_callback_receives_failed_event(self):
        stream = Stream("cb-test")
        try:
            errors = []
            event = stream.submit(lambda: 1 / 0)
            event.add_done_callback(lambda ev: errors.append(ev.error))
            with pytest.raises(ZeroDivisionError):
                event.wait(timeout=10.0)
            assert len(errors) == 1 and isinstance(errors[0], ZeroDivisionError)
        finally:
            stream.close()


# -- disabled == bit-identical ----------------------------------------------
def _equivalence_scenario(stream_cfg):
    """The test_faults_equivalence scenario, parameterized on StreamConfig."""
    import json  # noqa: F401 - kept for symmetry with the faults twin

    cfg = tiny_config(telemetry=True)
    if stream_cfg is not None:
        cfg = cfg.with_(stream=stream_cfg)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            assert not engine.streaming
            assert engine.promote_stream is None
            sums = {}
            for v in range(10):
                buf = make_buffer(ctx, CKPT, seed=v)
                sums[v] = buf.checksum()
                engine.checkpoint(v, buf)
                engine.wait_for_flushes(timeout=600.0)
            restored = {}
            out = ctx.device.alloc_buffer(CKPT)
            for v in restore_order(RestoreOrder.IRREGULAR, 10, seed=3):
                engine.restore(v, out)
                restored[v] = out.checksum()
            assert restored == sums
            decisions = [
                {"name": ev.name, "args": ev.args}
                for ev in cluster.telemetry.bus.snapshot()
                if ev.name == "evict-window"
            ]
            layouts = {
                cache.name: [
                    (f.offset, f.size, None if f.is_gap else f.record.ckpt_id)
                    for f in cache.table.fragments()
                ]
                for cache in (engine.gpu_cache, engine.host_cache)
            }
            registry = cluster.telemetry.registry
            tier_bytes = {
                name: registry.counter(name).value
                for name in (
                    "flush.d2h.bytes",
                    "flush.h2f.bytes",
                    "flush.f2p.bytes",
                    "tier.ssd.write_bytes",
                    "tier.pfs.write_bytes",
                )
            }
            metric_names = sorted(registry.snapshot().keys())
            return decisions, layouts, tier_bytes, metric_names, restored


def test_disabled_streaming_is_bit_identical():
    import json

    default = _equivalence_scenario(None)
    # Every other knob non-default; enabled=False must make them all inert.
    off = _equivalence_scenario(
        StreamConfig(
            enabled=False,
            stream_chunk_bytes=4 * MiB,
            ring_chunks=7,
            min_stream_chunks=3,
            prefetch=False,
        )
    )
    for got, want in zip(off, default):
        assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
            want, sort_keys=True, default=str
        )
    metric_names = default[3]
    # The streaming gauges must not exist in a disabled run's snapshot.
    assert not any("stream" in name for name in metric_names)


# -- streaming on: end-to-end correctness ------------------------------------
class TestStreamedCascade:
    def test_streamed_flush_restores_identical_bytes(self):
        cfg = tiny_config(telemetry=True, stream=STREAMING)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                assert engine.streaming
                sums = {}
                for v in range(8):
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                assert engine.wait_for_flushes(timeout=600.0)
                for v in range(8):
                    assert engine.catalog.get(v).durable_level is TierLevel.PFS
                out = ctx.device.alloc_buffer(CKPT)
                for v in restore_order(RestoreOrder.IRREGULAR, 8, seed=3):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]
                reg = cluster.telemetry.registry
                assert reg.counter("flush.stream.pipelines").value == 8
                # Gauges exist and carry sane values (overlap itself is
                # wall-clock dependent, so only bounds are asserted).
                assert 0.0 <= reg.gauge("flush.stream.overlap_ratio").value <= 1.0
                for stage in ("d2h", "h2f", "f2p"):
                    assert reg.gauge(f"flush.{stage}.stall_time").value >= 0.0
                validate_engine(engine)

    def test_small_checkpoints_fall_back_to_legacy(self):
        # Below min_stream_chunks chunks the whole-object path runs.
        cfg = tiny_config(
            telemetry=True,
            stream=StreamConfig(enabled=True, stream_chunk_bytes=256 * MiB),
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                buf = make_buffer(ctx, CKPT, seed=0)
                expected = buf.checksum()
                engine.checkpoint(0, buf)
                assert engine.wait_for_flushes(timeout=600.0)
                assert cluster.telemetry.registry.counter(
                    "flush.stream.pipelines"
                ).value == 0
                out = ctx.device.alloc_buffer(CKPT)
                engine.restore(0, out)
                assert out.checksum() == expected

    def test_streaming_with_reduction(self):
        """Chunk recipes reconstruct and CRCs verify under streaming."""
        cfg = tiny_config(
            telemetry=True,
            stream=STREAMING,
            reduce=ReduceConfig(enabled=True),
            resilience=RESILIENT,  # CRC metadata stamped at commit
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                sums = {}
                base = make_buffer(ctx, CKPT, seed=0)
                for v in range(6):
                    buf = ctx.device.alloc_buffer(CKPT)
                    # High similarity: dedup/delta engage, physical < wire.
                    buf.payload[:] = base.payload
                    rng = make_rng(v, "stream-reduce")
                    idx = rng.integers(
                        0, buf.payload.size, size=buf.payload.size // 50
                    )
                    buf.payload[idx] ^= v + 1
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                assert engine.wait_for_flushes(timeout=600.0)
                pid = engine.process_id
                for v in range(6):
                    key = (pid, v)
                    if engine.ssd.contains(key):
                        assert engine.ssd.verify(key)
                out = ctx.device.alloc_buffer(CKPT)
                for v in range(6):
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]
                validate_engine(engine)


# -- streaming + faults ------------------------------------------------------
class TestStreamedFaults:
    @pytest.mark.parametrize("point", ["before-h2f", "after-h2f", "after-f2p"])
    def test_crash_between_chunk_commits(self, point):
        """Commit-at-end: a crash at a stage boundary mid-stream leaves no
        torn object; the journal recovers exactly what committed."""
        cfg = tiny_config(
            stream=STREAMING,
            faults=FaultConfig(enabled=True, crash_point=point, crash_ckpt=1),
            resilience=RESILIENT,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            engine = ScoreEngine(ctx, flush_to_pfs=True)
            sums = {}
            buf0 = make_buffer(ctx, CKPT, seed=0)
            sums[0] = buf0.checksum()
            engine.checkpoint(0, buf0)
            engine.wait_for_flushes(timeout=600.0)
            buf1 = make_buffer(ctx, CKPT, seed=1)
            sums[1] = buf1.checksum()
            try:
                engine.checkpoint(1, buf1)
            except InjectedCrash:
                pass
            engine.close()
            assert engine.crashed.is_set()
            pid = engine.process_id
            stores = [cluster.nodes[0].ssd, cluster.pfs]
            durable = {
                v for v in (0, 1) if any(s.contains((pid, v)) for s in stores)
            }
            assert 0 in durable
            if point == "before-h2f":
                # Crashed before any durable commit of v1: no torn object.
                assert not cluster.nodes[0].ssd.contains((pid, 1))
            engine2 = ScoreEngine(ctx, flush_to_pfs=True)
            try:
                assert engine2.recover_history() == len(durable)
                out = ctx.device.alloc_buffer(CKPT)
                for v in sorted(durable):
                    engine2.restore(v, out)
                    assert out.checksum() == sums[v]
                validate_engine(engine2)
            finally:
                engine2.close()

    def test_reroute_mid_stream_resumes_at_right_chunk(self):
        """An SSD that dies after consuming some chunks reroutes to the
        PFS, replaying the consumed chunks, and lands verified bytes."""
        cfg = tiny_config(
            telemetry=True, stream=STREAMING, resilience=RESILIENT
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                real_open_put = engine.ssd.open_put
                die_after = 2  # chunks the SSD consumes before going dark

                def flaky_open_put(key, nominal_size, payload_size, **kw):
                    handle = real_open_put(key, nominal_size, payload_size, **kw)
                    real_write = handle.write
                    calls = {"n": 0}

                    def flaky_write(nbytes, **wkw):
                        if calls["n"] >= die_after:
                            raise TierOfflineError("ssd died mid-stream")
                        calls["n"] += 1
                        return real_write(nbytes, **wkw)

                    handle.write = flaky_write
                    return handle

                engine.ssd.open_put = flaky_open_put
                try:
                    buf = make_buffer(ctx, CKPT, seed=0)
                    expected = buf.checksum()
                    engine.checkpoint(0, buf)
                    assert engine.wait_for_flushes(timeout=600.0)
                finally:
                    engine.ssd.open_put = real_open_put
                record = engine.catalog.get(0)
                assert record.durable_level is TierLevel.PFS
                assert engine.flusher.rerouted >= 1
                assert not engine.ssd.contains((engine.process_id, 0))
                # The reroute replayed the already-consumed chunks: the PFS
                # moved the full wire size, not just the tail.
                wire = record.wire_size(TierLevel.HOST, TierLevel.SSD)
                reg = cluster.telemetry.registry
                assert reg.counter("tier.pfs.write_bytes").value >= wire
                out = ctx.device.alloc_buffer(CKPT)
                engine.restore(0, out)
                assert out.checksum() == expected
                validate_engine(engine)

    def test_mid_stream_outage_window(self):
        """A time-indexed SSD outage opening mid-run still yields full
        durability (reroute at whatever chunk boundary the gate trips)."""
        cfg = tiny_config(
            stream=STREAMING,
            faults=FaultConfig(
                enabled=True, tier_outages=(("ssd", 0.0, 1e9, 0.0),)
            ),
            resilience=RESILIENT,
        )
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                sums = {}
                for v in range(3):
                    buf = make_buffer(ctx, CKPT, seed=v)
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                assert engine.wait_for_flushes(timeout=600.0)
                out = ctx.device.alloc_buffer(CKPT)
                for v in range(3):
                    record = engine.catalog.get(v)
                    assert record.durable_level is TierLevel.PFS
                    engine.restore(v, out)
                    assert out.checksum() == sums[v]
                validate_engine(engine)


# -- drain sweep -------------------------------------------------------------
def test_drain_waits_for_cascading_resubmission():
    """drain() must not return while a later stage still holds queued work
    that an earlier sweep pass missed (the old two-pass sweep bug)."""
    cfg = tiny_config(stream=STREAMING)
    with Cluster(cfg) as cluster:
        ctx = cluster.process_contexts()[0]
        with ScoreEngine(ctx, flush_to_pfs=True) as engine:
            for v in range(6):
                engine.checkpoint(v, make_buffer(ctx, CKPT, seed=v))
            assert engine.wait_for_flushes(timeout=600.0)
            # After a successful drain every stream really is idle and
            # every checkpoint reached the final tier.
            for stream in (
                engine.flusher.d2h_stream,
                engine.flusher.h2f_stream,
                engine.flusher.f2p_stream,
            ):
                assert stream is None or stream.depth == 0
            for v in range(6):
                assert engine.catalog.get(v).durable_level is TierLevel.PFS


# -- property: streamed == store-and-forward payloads ------------------------
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    sizes=st.lists(
        st.sampled_from([32 * MiB, 48 * MiB, 128 * MiB, 160 * MiB]),
        min_size=2,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_streamed_and_legacy_checksums_identical(sizes, seed):
    def run(stream_cfg):
        cfg = tiny_config()
        if stream_cfg is not None:
            cfg = cfg.with_(stream=stream_cfg)
        with Cluster(cfg) as cluster:
            ctx = cluster.process_contexts()[0]
            with ScoreEngine(ctx, flush_to_pfs=True) as engine:
                sums = {}
                for v, size in enumerate(sizes):
                    buf = ctx.device.alloc_buffer(size)
                    buf.fill_random(make_rng(seed + v, "stream-prop"))
                    sums[v] = buf.checksum()
                    engine.checkpoint(v, buf)
                assert engine.wait_for_flushes(timeout=600.0)
                restored = {}
                for v, size in enumerate(sizes):
                    out = ctx.device.alloc_buffer(size)
                    engine.restore(v, out)
                    restored[v] = out.checksum()
                assert restored == sums
                return sums

    assert run(STREAMING) == run(None)
