"""Checkpoint service front-end: sessions, admission, placement, tagging."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.report import analyze_events, render_report
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig
from repro.errors import BackpressureError, CheckpointNotFound, LifecycleError
from repro.telemetry.exporters import chrome_trace, read_jsonl, write_jsonl
from repro.util.rng import make_rng
from repro.util.units import MiB
from tests.conftest import tiny_config

CKPT = 64 * MiB


def service_config(num_nodes=2, processes_per_node=1, telemetry=False, **cluster_kw):
    return tiny_config(
        num_nodes=num_nodes,
        processes_per_node=processes_per_node,
        telemetry=telemetry,
        cluster=ClusterConfig(enabled=True, **cluster_kw),
    )


def make_topology(config, **engine_kw):
    engine_kw.setdefault("flush_to_pfs", True)
    return ClusterTopology(config, engine_kwargs=engine_kw)


def fill(engine, size=CKPT, seed=5):
    buf = engine.device.alloc_buffer(size)
    buf.fill_random(make_rng(seed, "service-test"))
    return buf


class TestSessions:
    def test_connect_is_idempotent_and_round_robin(self):
        with make_topology(service_config(num_nodes=2)) as topo:
            a = topo.service.connect("a")
            b = topo.service.connect("b")
            assert topo.service.connect("a") is a
            assert a.engine is topo.engines[0]
            assert b.engine is topo.engines[1]
            # Third client wraps around the engine ring.
            assert topo.service.connect("c").engine is topo.engines[0]

    def test_session_capacity_refuses_with_backpressure(self):
        cfg = service_config(num_nodes=1, service_max_sessions=1, replica_factor=1)
        with make_topology(cfg) as topo:
            topo.service.connect("only")
            with pytest.raises(BackpressureError):
                topo.service.connect("overflow")
            topo.service.disconnect("only")
            topo.service.connect("overflow")  # capacity freed

    def test_queue_depth_bounds_inflight_rpcs(self):
        cfg = service_config(num_nodes=1, service_queue_depth=1, replica_factor=1)
        with make_topology(cfg) as topo:
            session = topo.service.connect("c0")
            session._admit()  # occupy the only slot
            with pytest.raises(BackpressureError):
                session.query(0)
            session._release()


class TestRpcSemantics:
    def test_duplicate_submit_is_a_lifecycle_error(self):
        cfg = service_config(num_nodes=1, replica_factor=1)
        with make_topology(cfg) as topo:
            session = topo.service.connect("c0")
            session.submit(0, fill(session.engine))
            with pytest.raises(LifecycleError):
                session.submit(0, fill(session.engine))

    def test_restore_of_unknown_checkpoint_raises(self):
        cfg = service_config(num_nodes=1, replica_factor=1)
        with make_topology(cfg) as topo:
            session = topo.service.connect("c0")
            out = session.engine.device.alloc_buffer(CKPT)
            with pytest.raises(CheckpointNotFound):
                session.restore(404, out)
            with pytest.raises(CheckpointNotFound):
                session.query(404)

    def test_cross_node_restore_through_service_verifies(self):
        with make_topology(service_config(num_nodes=2)) as topo:
            session = topo.service.connect("c0")
            buf = fill(session.engine)
            want = buf.checksum()
            session.submit(0, buf)
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            target = topo.engines[1]
            out = target.device.alloc_buffer(CKPT)
            session.restore(0, out, engine=target)
            assert out.checksum() == want
            # The adopted record points back at its home process.
            record = target.catalog.maybe_get(0)
            assert record is not None
            assert record.home_pid == session.engine.process_id

    def test_query_reports_placement_and_holders(self):
        with make_topology(service_config(num_nodes=3)) as topo:
            session = topo.service.connect("c0")
            session.submit(0, fill(session.engine))
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            info = session.query(0)
            assert info["home_pid"] == session.engine.process_id
            assert info["home_node"] == session.engine.node_id
            assert info["durable_level"] == "PFS"
            assert info["ssd_holders"] == [0, 1]

    def test_rpc_hop_charges_virtual_latency(self):
        cfg = service_config(
            num_nodes=1, replica_factor=1, service_rpc_latency_s=0.01
        )
        with make_topology(cfg) as topo:
            session = topo.service.connect("c0")
            before = topo.cluster.clock.now()
            with pytest.raises(CheckpointNotFound):
                session.query(0)
            assert topo.cluster.clock.now() - before >= 0.01


class TestNodeTagging:
    def _traced_topology(self):
        topo = make_topology(service_config(num_nodes=2, telemetry=True))
        session = topo.service.connect("c0")
        session.submit(0, fill(session.engine))
        for engine in topo.engines:
            engine.wait_for_flushes(timeout=600.0)
        out = topo.engines[1].device.alloc_buffer(CKPT)
        session.restore(0, out, engine=topo.engines[1])
        return topo

    def test_bus_stamps_node_and_engine_ids(self):
        with self._traced_topology() as topo:
            events = topo.telemetry.bus.snapshot()
            tagged = [ev for ev in events if ev.node_id is not None]
            assert tagged, "no events picked up a node binding"
            # Engine tracks carry both ids; each node appears.
            assert {ev.node_id for ev in tagged} == {0, 1}
            engine_tagged = [ev for ev in tagged if ev.engine_id is not None]
            assert {ev.engine_id for ev in engine_tagged} == {
                engine.process_id for engine in topo.engines
            }

    def test_jsonl_roundtrip_preserves_node_ids(self):
        with self._traced_topology() as topo:
            events = topo.telemetry.bus.snapshot()
        sink = io.StringIO()
        write_jsonl(sink, events)
        sink.seek(0)
        loaded = read_jsonl(sink)
        assert [(ev.node_id, ev.engine_id) for ev in loaded] == [
            (ev.node_id, ev.engine_id) for ev in events
        ]

    def test_chrome_trace_splits_cluster_lanes_per_node(self):
        with self._traced_topology() as topo:
            trace = chrome_trace(topo.telemetry.bus)
        names = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        }
        assert "node0" in names and "node1" in names

    def test_analyze_report_groups_per_node(self):
        with self._traced_topology() as topo:
            report = analyze_events(topo.telemetry.bus.snapshot())
        assert set(report["nodes"]) == {"0", "1"}
        for entry in report["nodes"].values():
            assert entry["events"] > 0
        rendered = render_report(report)
        assert "per-node activity:" in rendered

    def test_single_node_reports_stay_untagged(self):
        cfg = tiny_config(telemetry=True)
        with make_topology(cfg) as topo:
            session_engine = topo.engines[0]
            buf = fill(session_engine)
            session_engine.checkpoint(0, buf)
            session_engine.wait_for_flushes(timeout=600.0)
            events = topo.telemetry.bus.snapshot()
            assert all(ev.node_id is None for ev in events)
            report = analyze_events(events)
            assert "nodes" not in report


class TestDisconnect:
    def test_disconnect_poisons_the_stale_session(self):
        with make_topology(service_config(num_nodes=2)) as topo:
            session = topo.service.connect("c0")
            session.submit(0, fill(session.engine))
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            topo.service.disconnect("c0")
            with pytest.raises(LifecycleError):
                session.query(0)
            with pytest.raises(LifecycleError):
                session.submit(1, fill(topo.engines[0]))
            out = topo.engines[0].device.alloc_buffer(CKPT)
            with pytest.raises(LifecycleError):
                session.restore(0, out)
            # Reconnecting the same client id yields a fresh, working session.
            fresh = topo.service.connect("c0")
            assert fresh is not session
            fresh.restore(0, out)

    def test_disconnect_drains_inflight_admissions(self):
        import threading

        with make_topology(service_config(num_nodes=1, replica_factor=1)) as topo:
            session = topo.service.connect("c0")
            session._admit()  # an RPC caught mid-flight
            done = threading.Event()

            def drain():
                topo.service.disconnect("c0")
                done.set()

            t = threading.Thread(target=drain, daemon=True)
            t.start()
            assert not done.wait(0.1), "disconnect returned with an RPC in flight"
            session._release()
            t.join(timeout=5.0)
            assert done.is_set()

    def test_disconnect_of_unknown_client_is_a_noop(self):
        with make_topology(service_config(num_nodes=1, replica_factor=1)) as topo:
            topo.service.disconnect("never-connected")


class TestRestoreMany:
    def test_partial_failure_reports_per_item_results(self):
        with make_topology(service_config(num_nodes=2)) as topo:
            session = topo.service.connect("c0")
            buf = fill(session.engine)
            want = buf.checksum()
            session.submit(0, buf)
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            good = topo.engines[1].device.alloc_buffer(CKPT)
            bad = topo.engines[1].device.alloc_buffer(CKPT)
            results = topo.service.restore_many(
                [
                    (session, 0, good, topo.engines[1]),
                    (session, 404, bad, topo.engines[1]),
                ]
            )
            assert [r.ckpt_id for r in results] == [0, 404]
            assert results[0].ok and results[0].latency_s > 0
            assert results[0].error is None
            assert not results[1].ok and results[1].latency_s is None
            assert isinstance(results[1].error, CheckpointNotFound)
            # The failed sibling never masked the successful restore.
            assert good.checksum() == want


class TestStats:
    def test_stats_counts_sessions_and_checkpoints(self):
        with make_topology(service_config(num_nodes=2)) as topo:
            s0 = topo.service.connect("c0")
            topo.service.connect("c1")
            s0.submit(0, fill(s0.engine))
            for engine in topo.engines:
                engine.wait_for_flushes(timeout=600.0)
            stats = topo.service.stats()
            assert stats == {
                "sessions": 2,
                "checkpoints": 1,
                "engines": 2,
                "failovers": 0,
                "replays_skipped": 0,
            }


def test_service_json_query_is_serialisable():
    with make_topology(service_config(num_nodes=2)) as topo:
        session = topo.service.connect("c0")
        session.submit(0, fill(session.engine))
        for engine in topo.engines:
            engine.wait_for_flushes(timeout=600.0)
        json.dumps(session.query(0))
