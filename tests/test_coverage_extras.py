"""Additional coverage: UVM runtime throttle, harness labels, misc edges."""

import pytest

from repro.baselines.uvm_runtime import UvmEngine
from repro.harness.approaches import APPROACHES
from repro.harness.experiment import Experiment
from repro.harness.figures import FigureResult
from repro.metrics.timeline import sparkline
from repro.util.units import MiB
from repro.workloads.patterns import RestoreOrder
from tests.conftest import make_buffer

CKPT = 128 * MiB


class TestUvmThrottle:
    def test_prefetched_unconsumed_bounded_by_device_cache(self, context):
        eng = UvmEngine(context)
        try:
            n = 10
            for v in range(n):
                eng.checkpoint(v, make_buffer(context, CKPT, seed=v))
            eng.wait_for_flushes()
            for v in range(n):
                eng.prefetch_enqueue(v)
            eng.prefetch_start()
            eng.clock.sleep(2.0)  # let prefetches run up to the throttle
            with eng.monitor:
                assert eng._prefetched_unconsumed <= eng.uvm.device_capacity
            # consume everything; the counter must drain back to ~zero
            out = context.device.alloc_buffer(CKPT)
            for v in range(n):
                eng.restore(v, out)
            eng.clock.sleep(0.5)
            with eng.monitor:
                assert eng._prefetched_unconsumed == 0
        finally:
            eng.close()

    def test_unknown_recover_size(self, context):
        from repro.errors import CheckpointNotFound

        eng = UvmEngine(context)
        try:
            with pytest.raises(CheckpointNotFound):
                eng.recover_size(99)
        finally:
            eng.close()


class TestHarnessSurfaces:
    def test_experiment_label_mentions_wait(self):
        exp = Experiment(
            approach=APPROACHES["uvm-single"],
            order=RestoreOrder.IRREGULAR,
            wait_for_flush=True,
        )
        assert "WAIT" in exp.label and "UVM" in exp.label
        assert "irregular" in exp.label

    def test_figure_result_defaults(self):
        result = FigureResult(figure="x", columns=["a"], rows=[(1,)])
        assert result.rendered == "" and result.extras == {}


class TestSparklineEdges:
    def test_single_point(self):
        assert len(sparkline([(0, 3.0)])) == 1

    def test_negative_values(self):
        out = sparkline([(0, -5.0), (1, 0.0), (2, 5.0)])
        assert out[0] == "▁" and out[-1] == "█"


class TestLinkEstimateEdges:
    def test_negative_estimate_rejected(self):
        from repro.clock import VirtualClock
        from repro.simgpu.bandwidth import Link

        link = Link("t", bandwidth=1024, clock=VirtualClock(0.002))
        with pytest.raises(ValueError):
            link.estimate(-1)
